"""Gcost serialization — the paper's offline-analysis workflow.

§3.2: "these analyses ... could be easily migrated to an offline heap
analysis tool ... the JVM only needs to write Gcost to external
storage."  These helpers round-trip a :class:`DependenceGraph` through
a JSON document so a profiled run can be analyzed later (or elsewhere)
without re-executing the program.

Format v2 additionally carries the tracker-side state
(:class:`~repro.profiler.state.TrackerState`): the per-node context
sets behind the conflict ratio, the branch outcome counters, and the
return-value node sets.  With them on disk the CR statistic and the
predicate / return-cost clients run fully offline, and the parallel
runtime's workers can ship complete profiles back to the merging
parent.  v1 documents (graph only) are still readable.

Integrity
---------

Profiles written by :func:`save_graph` carry a ``checksum`` key — the
SHA-256 of the canonical JSON of every *other* key — which the loaders
verify when present (:class:`~repro.profiler.errors.ProfileChecksumError`
on mismatch).  A file that does not parse at all raises
:class:`~repro.profiler.errors.ProfileTruncatedError`; for the common
truncation case (a writer killed mid-``json.dump``)
:func:`salvage_profile` recovers the longest decodable prefix —
section order in the document (nodes before edges before tracker
state) was chosen so truncation costs the *derived* sections first.
"""

from __future__ import annotations

import hashlib
import json

from .errors import (ProfileChecksumError, ProfileFormatError,
                     ProfileTruncatedError)
from .graph import DependenceGraph
from .state import TrackerState

FORMAT_VERSION = 2

#: Versions :func:`graph_from_dict` accepts.
READABLE_VERSIONS = (1, 2)


def graph_to_dict(graph: DependenceGraph, meta=None, tracker=None,
                  trace=None) -> dict:
    """A JSON-serializable snapshot of the graph.

    ``meta`` carries run facts the graph itself doesn't hold (e.g.
    ``{"instructions": vm.instr_count}``) so offline analyses can
    compute trace-relative metrics like IPD.  ``tracker`` (a
    :class:`CostTracker` or :class:`TrackerState`) adds the
    tracker-side state under the ``"tracker"`` key.  ``trace`` — the
    producing worker's span context, a dict like ``{"trace_id": ...,
    "span_id": ..., "pid": ..., "shard": ..., "attempt": ...}`` — is
    stored under ``meta["trace"]`` so a saved profile can be joined
    back to the telemetry stream that watched it being built.
    """
    data = {
        "version": FORMAT_VERSION,
        "meta": dict(meta) if meta else {},
        "slots": graph.slots,
        "nodes": [list(key) for key in graph.node_keys],
        "freq": list(graph.freq),
        "flags": list(graph.flags),
        "edges": [[src, dst]
                  for src, succs in enumerate(graph.succs)
                  for dst in sorted(succs)],
        "effects": [[node, kind, list(alloc_key) if alloc_key else None,
                     field]
                    for node, (kind, alloc_key, field)
                    in sorted(graph.effects.items())],
        "ref_edges": sorted([store, alloc]
                            for store, alloc in graph.ref_edges),
        "points_to": [[list(base), field,
                       sorted(list(t) for t in targets)]
                      for base, fields in sorted(graph.points_to.items())
                      for field, targets in sorted(fields.items())],
        "control_deps": [[node, sorted(preds)]
                         for node, preds
                         in sorted(graph.control_deps.items())],
    }
    if trace is not None:
        data["meta"]["trace"] = dict(trace)
    if tracker is not None:
        state = tracker.state() if hasattr(tracker, "state") else tracker
        data["tracker"] = {
            "node_gs": [sorted(gs) if gs else None
                        for gs in state.node_gs],
            "branch_outcomes": [[iid, taken, not_taken]
                                for iid, (taken, not_taken)
                                in sorted(state.branch_outcomes.items())],
            "return_nodes": [[iid, sorted(nodes)]
                             for iid, nodes
                             in sorted(state.return_nodes.items())],
        }
    return data


def graph_from_dict(data: dict) -> DependenceGraph:
    """Rebuild a graph from :func:`graph_to_dict` output (v1 or v2)."""
    version = data.get("version")
    if version not in READABLE_VERSIONS:
        raise ProfileFormatError(
            f"unsupported graph format version {version!r} "
            f"(readable: {READABLE_VERSIONS})")
    graph = DependenceGraph(slots=data.get("slots", 16))
    for (iid, d), freq, flags in zip(data["nodes"], data["freq"],
                                     data["flags"]):
        node = graph.node(iid, d, flags)
        graph.freq[node] = freq
    for src, dst in data["edges"]:
        graph.add_edge(src, dst)
    for node, kind, alloc_key, field in data["effects"]:
        key = tuple(alloc_key) if alloc_key is not None else None
        graph.effects[node] = (kind, key, field)
    for store, alloc in data["ref_edges"]:
        graph.add_ref_edge(store, alloc)
    for base, field, targets in data["points_to"]:
        for target in targets:
            graph.add_points_to(tuple(base), field, tuple(target))
    for node, preds in data.get("control_deps", []):
        graph.control_deps[node] = set(preds)
    return graph


def tracker_state_from_dict(data: dict):
    """The :class:`TrackerState` carried by a v2 document, or ``None``.

    v1 documents (and v2 documents written without a tracker) have no
    tracker section; callers fall back to graph-only analyses.
    """
    section = data.get("tracker")
    if section is None:
        return None
    return TrackerState(
        node_gs=[set(gs) if gs is not None else None
                 for gs in section.get("node_gs", [])],
        branch_outcomes={iid: [taken, not_taken]
                         for iid, taken, not_taken
                         in section.get("branch_outcomes", [])},
        return_nodes={iid: set(nodes)
                      for iid, nodes
                      in section.get("return_nodes", [])})


# -- integrity ---------------------------------------------------------------


def content_checksum(data: dict) -> str:
    """SHA-256 over the canonical JSON of every non-``checksum`` key."""
    payload = {key: value for key, value in data.items()
               if key != "checksum"}
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()


def _parse_profile(path) -> dict:
    """Read + JSON-parse a profile file with typed failures."""
    with open(path) as handle:
        text = handle.read()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise ProfileTruncatedError(
            f"profile {path!r} is truncated or not JSON "
            f"({error})") from error
    if not isinstance(data, dict):
        raise ProfileFormatError(
            f"profile {path!r} is not a JSON object")
    return data


def _verify_checksum(data: dict, path) -> None:
    recorded = data.get("checksum")
    if recorded is None:
        return  # pre-checksum file (or worker shard dict): nothing to check
    actual = content_checksum(data)
    if actual != recorded:
        raise ProfileChecksumError(
            f"profile {path!r} failed checksum validation "
            f"(recorded {recorded[:12]}…, computed {actual[:12]}…)")


def save_graph(graph: DependenceGraph, path, meta=None,
               tracker=None) -> None:
    """Write the graph (plus optional metadata / tracker state).

    The document gains a ``checksum`` key so loaders can detect silent
    corruption; pre-checksum files remain readable.
    """
    data = graph_to_dict(graph, meta, tracker)
    data["checksum"] = content_checksum(data)
    with open(path, "w") as handle:
        json.dump(data, handle)


def load_profile(path):
    """Read ``(graph, meta, state)`` from a :func:`save_graph` file.

    ``state`` is ``None`` for graph-only documents (v1, or v2 saved
    without a tracker).  Raises
    :class:`~repro.profiler.errors.ProfileTruncatedError` for
    unparseable files,
    :class:`~repro.profiler.errors.ProfileChecksumError` when the
    stored checksum does not match, and
    :class:`~repro.profiler.errors.ProfileFormatError` for unsupported
    versions.
    """
    data = _parse_profile(path)
    _verify_checksum(data, path)
    return (graph_from_dict(data), data.get("meta", {}),
            tracker_state_from_dict(data))


def load_graph_with_meta(path):
    """Read (graph, meta) from a file written by :func:`save_graph`."""
    data = _parse_profile(path)
    _verify_checksum(data, path)
    return graph_from_dict(data), data.get("meta", {})


def load_graph(path) -> DependenceGraph:
    """Read a graph previously written by :func:`save_graph`."""
    data = _parse_profile(path)
    _verify_checksum(data, path)
    return graph_from_dict(data)


# -- best-effort salvage -----------------------------------------------------


class SalvageReport:
    """What :func:`salvage_profile` recovered and what it gave up.

    ``repaired`` is True when the JSON itself needed truncation repair
    (as opposed to a parseable document with internal damage);
    ``missing`` lists sections absent from the recovered document;
    ``dropped`` counts entries discarded per section because they were
    malformed or referenced unrecovered nodes.
    """

    def __init__(self):
        self.repaired = False
        self.missing = []
        self.dropped = {}
        self.nodes = 0
        self.checksum_verified = False

    def drop(self, section: str, count: int = 1):
        if count:
            self.dropped[section] = self.dropped.get(section, 0) + count

    @property
    def clean(self) -> bool:
        return (not self.repaired and not self.missing
                and not self.dropped)

    def format(self) -> str:
        if self.clean:
            return f"intact ({self.nodes} nodes)"
        parts = [f"{self.nodes} nodes recovered"]
        if self.missing:
            parts.append(f"missing: {', '.join(self.missing)}")
        if self.dropped:
            parts.append("dropped: " + ", ".join(
                f"{section}={count}"
                for section, count in sorted(self.dropped.items())))
        return "; ".join(parts)


#: Document sections behind the graph itself, in write order.
_SECTIONS = ("nodes", "freq", "flags", "edges", "effects", "ref_edges",
             "points_to", "control_deps", "tracker")

#: Candidate truncation-repair cut points tried, newest first.
_MAX_REPAIR_TRIES = 4096


def _repair_truncated_json(text: str):
    """Parse the longest decodable prefix of a truncated JSON object.

    One forward scan records every position where a value just ended
    (a ``,``/``]``/``}`` outside any string) together with the open
    bracket stack there; candidates are then tried newest-first by
    cutting the text and appending the closers.  Returns the parsed
    dict or ``None``.
    """
    candidates = []
    stack = []
    in_string = False
    escaped = False
    for index, char in enumerate(text):
        if in_string:
            if escaped:
                escaped = False
            elif char == "\\":
                escaped = True
            elif char == '"':
                in_string = False
            continue
        if char == '"':
            in_string = True
        elif char in "[{":
            stack.append("]" if char == "[" else "}")
        elif char in "]}":
            if not stack or stack[-1] != char:
                break  # structurally corrupt past here; stop scanning
            stack.pop()
            candidates.append((index + 1, "".join(reversed(stack))))
        elif char == ",":
            candidates.append((index, "".join(reversed(stack))))
    for cut, closers in reversed(candidates[-_MAX_REPAIR_TRIES:]):
        try:
            data = json.loads(text[:cut] + closers)
        except json.JSONDecodeError:
            continue
        if isinstance(data, dict):
            return data
    return None


def _intlist(row, length):
    return (isinstance(row, list) and len(row) == length
            and all(isinstance(value, int) for value in row))


def _sanitize_partial(data: dict, report: SalvageReport) -> dict:
    """Trim a recovered document to its internally consistent core."""
    for section in _SECTIONS:
        if section not in data:
            report.missing.append(section)
    nodes = [row for row in data.get("nodes", []) if _intlist(row, 2)]
    report.drop("nodes", len(data.get("nodes", [])) - len(nodes))
    freq = [value for value in data.get("freq", [])
            if isinstance(value, int)]
    flags = [value for value in data.get("flags", [])
             if isinstance(value, int)]
    count = min(len(nodes), len(freq) if "freq" in data else len(nodes),
                len(flags) if "flags" in data else len(nodes))
    report.nodes = count
    clean = {
        "version": data.get("version", FORMAT_VERSION),
        "meta": data.get("meta") if isinstance(data.get("meta"), dict)
        else {},
        "slots": data.get("slots", 16),
        "nodes": nodes[:count],
        # Arrays lost to truncation are reconstructed neutrally: every
        # recovered node executed at least once, with no flags.
        "freq": (freq[:count] if "freq" in data else [1] * count),
        "flags": (flags[:count] if "flags" in data else [0] * count),
    }
    if "freq" in data and len(freq) < len(nodes):
        report.drop("nodes", len(nodes) - count)

    def keep(section, predicate):
        rows = data.get(section, [])
        kept = [row for row in rows if predicate(row)]
        report.drop(section, len(rows) - len(kept))
        return kept

    in_range = lambda n: isinstance(n, int) and 0 <= n < count  # noqa: E731
    clean["edges"] = keep(
        "edges", lambda row: _intlist(row, 2) and in_range(row[0])
        and in_range(row[1]))
    clean["effects"] = keep(
        "effects", lambda row: isinstance(row, list) and len(row) == 4
        and in_range(row[0])
        and (row[2] is None or _intlist(row[2], 2)))
    clean["ref_edges"] = keep(
        "ref_edges", lambda row: _intlist(row, 2) and in_range(row[0])
        and in_range(row[1]))
    clean["points_to"] = keep(
        "points_to", lambda row: isinstance(row, list) and len(row) == 3
        and _intlist(row[0], 2) and isinstance(row[2], list)
        and all(_intlist(t, 2) for t in row[2]))
    control = []
    for row in data.get("control_deps", []):
        if (isinstance(row, list) and len(row) == 2 and in_range(row[0])
                and isinstance(row[1], list)):
            preds = [p for p in row[1] if in_range(p)]
            report.drop("control_deps", len(row[1]) - len(preds))
            control.append([row[0], preds])
        else:
            report.drop("control_deps")
    clean["control_deps"] = control

    tracker = data.get("tracker")
    if isinstance(tracker, dict):
        node_gs = [gs if gs is None or (isinstance(gs, list)
                                        and all(isinstance(g, int)
                                                for g in gs))
                   else None
                   for gs in tracker.get("node_gs", [])[:count]]
        outcomes = [row for row in tracker.get("branch_outcomes", [])
                    if _intlist(row, 3)]
        report.drop("tracker",
                    len(tracker.get("branch_outcomes", [])) - len(outcomes))
        returns = []
        for row in tracker.get("return_nodes", []):
            if (isinstance(row, list) and len(row) == 2
                    and isinstance(row[1], list)):
                returns.append([row[0],
                                [n for n in row[1] if in_range(n)]])
            else:
                report.drop("tracker")
        clean["tracker"] = {"node_gs": node_gs,
                            "branch_outcomes": outcomes,
                            "return_nodes": returns}
    return clean


def salvage_profile(path):
    """Best-effort recovery: ``(graph, meta, state, report)``.

    Intact files load exactly as :func:`load_profile` does (with the
    checksum verified); truncated or internally damaged files are
    repaired to their longest decodable prefix and trimmed to a
    consistent subset — the checksum is *not* enforced on that path
    (it cannot match a partial document), which the
    :class:`SalvageReport` records.  Raises
    :class:`~repro.profiler.errors.ProfileTruncatedError` only when
    not even the version/node prefix survives.
    """
    report = SalvageReport()
    try:
        graph, meta, state = load_profile(path)
        report.nodes = graph.num_nodes
        report.checksum_verified = True
        return graph, meta, state, report
    except (ProfileFormatError, KeyError, IndexError, TypeError):
        # Typed load failures, but also the raw structural errors a
        # parseable-yet-damaged document (dangling node references,
        # malformed rows) triggers inside graph_from_dict.
        pass
    with open(path) as handle:
        text = handle.read()
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        data = _repair_truncated_json(text)
        report.repaired = True
    if not isinstance(data, dict) or not isinstance(
            data.get("nodes"), list):
        raise ProfileTruncatedError(
            f"profile {path!r} is beyond salvage "
            f"(no decodable node section)")
    clean = _sanitize_partial(data, report)
    return (graph_from_dict(clean), clean["meta"],
            tracker_state_from_dict(clean), report)
