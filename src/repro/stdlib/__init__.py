"""MiniJ standard library loader.

Library classes are written in MiniJ (``*.mj`` files in this package)
so their instructions are tracked exactly like application code — the
paper's reference-chain depth choice (n = 4) exists precisely because
JDK collection internals carry much of a data structure's cost, and the
same is true here.

Use :func:`stdlib_source` to fetch module text, or
:func:`compile_with_stdlib` to compile user source together with the
modules it needs (user source comes first so its line numbers are
stable for diagnostics).
"""

from __future__ import annotations

from pathlib import Path

from ..lang import compile_source

_HERE = Path(__file__).parent

#: Module name -> file name.
MODULES = {
    "util": "util.mj",
    "strings": "strings.mj",
    "intlist": "intlist.mj",
    "strlist": "strlist.mj",
    "strbuilder": "strbuilder.mj",
    "intmap": "intmap.mj",
    "intset": "intset.mj",
    "strmap": "strmap.mj",
    "file": "file.mj",
}

ALL_MODULES = tuple(MODULES)

#: Inter-module dependencies, resolved automatically by stdlib_source.
DEPENDENCIES = {
    "strmap": ("strings",),
    "intset": ("intmap",),
}


def stdlib_source(*names: str) -> str:
    """Concatenated source of the requested stdlib modules.

    Dependencies are pulled in automatically; each module appears once,
    in registry order, so the output is deterministic.
    """
    wanted = set()
    worklist = list(names)
    while worklist:
        name = worklist.pop()
        if name not in MODULES:
            raise KeyError(
                f"unknown stdlib module {name!r}; available: "
                f"{sorted(MODULES)}")
        if name in wanted:
            continue
        wanted.add(name)
        worklist.extend(DEPENDENCIES.get(name, ()))
    chunks = [(_HERE / MODULES[name]).read_text()
              for name in MODULES if name in wanted]
    return "\n".join(chunks)


def compile_with_stdlib(source: str, modules=ALL_MODULES,
                        entry_class: str = "Main",
                        entry_method: str = "main"):
    """Compile user source plus the named stdlib modules."""
    full = source + "\n" + stdlib_source(*modules)
    return compile_source(full, entry_class, entry_method)
