"""Pass 3: lower the type-annotated AST to three-address code.

The generator is a straightforward syntax-directed translation; each AST
expression yields the register holding its value.  Short-circuit
operators compile to branches; string concatenation inserts ``itos``
conversions for int operands; compound assignments load, compute, and
store.  Every class without an explicit constructor gets a generated
empty ``<init>`` so that ``new`` can always emit a CALL_SPECIAL.
"""

from __future__ import annotations

from ..ir import instructions as ins
from ..ir import types as irt
from ..ir.builder import MethodBuilder, ProgramBuilder
from . import ast
from .errors import TypeError_
from .parser import parse
from .resolver import ClassTable, build_class_table, resolve_type
from .typecheck import check


class CodeGen:
    def __init__(self, program_decl: ast.ProgramDecl, table: ClassTable):
        self.decl = program_decl
        self.table = table
        self.pb = ProgramBuilder()
        self.mb = None            # current MethodBuilder
        self.loop_stack = []      # [(break_label, continue_label)]

    # -- program ------------------------------------------------------------

    def generate(self):
        for class_decl in self.decl.classes:
            self._gen_class(class_decl)
        return self.pb.program

    def _gen_class(self, decl: ast.ClassDecl):
        cb = self.pb.class_(decl.name, decl.super_name)
        for field in decl.fields:
            cb.field(field.name, resolve_type(self.table, field.type_expr),
                     static=field.is_static)
        for method in decl.methods:
            sig = self.table.classes[decl.name].methods[method.name]
            params = list(zip(sig.param_names, sig.param_types))
            mb = cb.method(method.name, params, sig.return_type,
                           static=sig.is_static)
            self._gen_method_body(mb, method, sig)
        if decl.constructors:
            ctor = decl.constructors[0]
            sig = self.table.classes[decl.name].ctor
            params = list(zip(sig.param_names, sig.param_types))
            mb = cb.constructor(params)
            self._gen_method_body(mb, ctor, sig)
        else:
            mb = cb.constructor([])
            mb.ret()

    def _gen_method_body(self, mb: MethodBuilder, method: ast.MethodDecl,
                         sig):
        self.mb = mb
        self.loop_stack = []
        mb.at_line(method.line)
        self._gen_stmt(method.body)
        # Implicit return for void methods falling off the end.  The
        # checker guarantees non-void methods always return, but their
        # bodies may still syntactically fall off after e.g. a loop; the
        # verifier requires a terminator, so emit an unreachable return
        # only when the last instruction isn't one.
        body = mb.method.body
        ends_in_terminator = bool(body) and body[-1].op in (
            ins.OP_RETURN, ins.OP_JUMP, ins.OP_BRANCH)
        dangling_label = any(index == len(body)
                             for index in mb.method.labels.values())
        if not ends_in_terminator or dangling_label:
            if sig.return_type == irt.VOID:
                mb.ret()
            else:
                # Unreachable trap (checker proved all paths return).
                dead = mb.const_int(0)
                if sig.return_type == irt.INT:
                    mb.ret(dead)
                elif sig.return_type == irt.BOOL:
                    mb.ret(mb.const_bool(False))
                else:
                    mb.ret(mb.const_null())
        self.mb = None

    # -- statements -----------------------------------------------------------

    def _gen_stmt(self, stmt: ast.Stmt):
        mb = self.mb
        mb.at_line(stmt.line)
        if isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                self._gen_stmt(inner)
        elif isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                value = self._gen_expr(stmt.init)
                mb.move(stmt.reg, value)
            else:
                self._gen_default(stmt.reg, stmt.type_expr)
        elif isinstance(stmt, ast.Assign):
            self._gen_assign(stmt)
        elif isinstance(stmt, ast.IncDec):
            one = mb.const_int(1)
            op = "+" if stmt.delta > 0 else "-"
            self._gen_read_modify_write(stmt.target, op, one)
        elif isinstance(stmt, ast.If):
            self._gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self._gen_while(stmt)
        elif isinstance(stmt, ast.For):
            self._gen_for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                mb.ret()
            else:
                mb.ret(self._gen_expr(stmt.value))
        elif isinstance(stmt, ast.Break):
            mb.jump(self.loop_stack[-1][0])
        elif isinstance(stmt, ast.Continue):
            mb.jump(self.loop_stack[-1][1])
        elif isinstance(stmt, ast.ExprStmt):
            self._gen_expr(stmt.expr, want_value=False)
        elif isinstance(stmt, ast.SuperCall):
            args = [self._gen_expr(a) for a in stmt.args]
            mb.call_special(stmt.resolved_class, "<init>", "this", args)
        else:  # pragma: no cover - defensive
            raise TypeError_(f"cannot generate {type(stmt).__name__}",
                             stmt.line, stmt.col)

    def _gen_default(self, reg: str, type_expr: ast.TypeExpr):
        mb = self.mb
        type_ = resolve_type(self.table, type_expr)
        if type_ == irt.INT:
            mb.const_int(0, dest=reg)
        elif type_ == irt.BOOL:
            mb.const_bool(False, dest=reg)
        else:
            mb.const_null(dest=reg)

    def _gen_assign(self, stmt: ast.Assign):
        if stmt.op == "":
            value = self._gen_expr(stmt.value)
            self._gen_write(stmt.target, value)
        else:
            value = self._gen_expr(stmt.value)
            self._gen_read_modify_write(stmt.target, stmt.op, value,
                                        value_node=stmt.value)

    def _gen_read_modify_write(self, target: ast.Expr, op: str, value: str,
                               value_node=None):
        """Compound assignment / ++ / -- with a single evaluation of the
        target's subexpressions."""
        mb = self.mb
        is_string_append = (op == "+" and target.type == irt.STRING)
        if is_string_append and value_node is not None \
                and value_node.type == irt.INT:
            value = mb.intrinsic(ins.INTR_ITOS, [value])
        binop = ins.BIN_CONCAT if is_string_append else op

        if isinstance(target, ast.Name):
            kind = target.binding[0]
            if kind == "local":
                reg = target.binding[1]
                mb.binop(binop, reg, value, dest=reg)
                return
            if kind == "field":
                sig = target.binding[1]
                current = mb.load_field("this", sig.name)
                result = mb.binop(binop, current, value)
                mb.store_field("this", sig.name, result)
                return
            sig = target.binding[1]  # static
            current = mb.load_static(sig.owner, sig.name)
            result = mb.binop(binop, current, value)
            mb.store_static(sig.owner, sig.name, result)
            return
        if isinstance(target, ast.FieldAccess):
            if target.kind == "static":
                sig = target.field_def
                current = mb.load_static(sig.owner, sig.name)
                result = mb.binop(binop, current, value)
                mb.store_static(sig.owner, sig.name, result)
                return
            obj = self._gen_expr(target.obj)
            current = mb.load_field(obj, target.name)
            result = mb.binop(binop, current, value)
            mb.store_field(obj, target.name, result)
            return
        # Index
        arr = self._gen_expr(target.arr)
        idx = self._gen_expr(target.idx)
        current = mb.array_load(arr, idx)
        result = mb.binop(binop, current, value)
        mb.array_store(arr, idx, result)

    def _gen_write(self, target: ast.Expr, value: str):
        mb = self.mb
        if isinstance(target, ast.Name):
            kind = target.binding[0]
            if kind == "local":
                mb.move(target.binding[1], value)
            elif kind == "field":
                mb.store_field("this", target.binding[1].name, value)
            else:
                sig = target.binding[1]
                mb.store_static(sig.owner, sig.name, value)
        elif isinstance(target, ast.FieldAccess):
            if target.kind == "static":
                sig = target.field_def
                mb.store_static(sig.owner, sig.name, value)
            else:
                obj = self._gen_expr(target.obj)
                mb.store_field(obj, target.name, value)
        else:  # Index
            arr = self._gen_expr(target.arr)
            idx = self._gen_expr(target.idx)
            mb.array_store(arr, idx, value)

    def _gen_if(self, stmt: ast.If):
        mb = self.mb
        cond = self._gen_expr(stmt.cond)
        then_label = mb.fresh_label("then")
        end_label = mb.fresh_label("endif")
        if stmt.else_stmt is None:
            mb.branch(cond, then_label, end_label)
            mb.label(then_label)
            self._gen_stmt(stmt.then_stmt)
            mb.label(end_label)
        else:
            else_label = mb.fresh_label("else")
            mb.branch(cond, then_label, else_label)
            mb.label(then_label)
            self._gen_stmt(stmt.then_stmt)
            mb.jump(end_label)
            mb.label(else_label)
            self._gen_stmt(stmt.else_stmt)
            mb.label(end_label)

    def _gen_while(self, stmt: ast.While):
        mb = self.mb
        head = mb.fresh_label("while")
        body = mb.fresh_label("body")
        end = mb.fresh_label("endwhile")
        mb.label(head)
        cond = self._gen_expr(stmt.cond)
        mb.branch(cond, body, end)
        mb.label(body)
        self.loop_stack.append((end, head))
        self._gen_stmt(stmt.body)
        self.loop_stack.pop()
        mb.jump(head)
        mb.label(end)

    def _gen_for(self, stmt: ast.For):
        mb = self.mb
        if stmt.init is not None:
            self._gen_stmt(stmt.init)
        head = mb.fresh_label("for")
        body = mb.fresh_label("body")
        cont = mb.fresh_label("cont")
        end = mb.fresh_label("endfor")
        mb.label(head)
        if stmt.cond is not None:
            cond = self._gen_expr(stmt.cond)
        else:
            cond = mb.const_bool(True)
        mb.branch(cond, body, end)
        mb.label(body)
        self.loop_stack.append((end, cont))
        self._gen_stmt(stmt.body)
        self.loop_stack.pop()
        mb.label(cont)
        if stmt.update is not None:
            self._gen_stmt(stmt.update)
        mb.jump(head)
        mb.label(end)

    # -- expressions -----------------------------------------------------------

    def _gen_expr(self, expr: ast.Expr, want_value: bool = True) -> str:
        mb = self.mb
        if expr.line:
            mb.at_line(expr.line)
        if isinstance(expr, ast.IntLit):
            return mb.const_int(expr.value)
        if isinstance(expr, ast.BoolLit):
            return mb.const_bool(expr.value)
        if isinstance(expr, ast.StringLit):
            return mb.const_str(expr.value)
        if isinstance(expr, ast.NullLit):
            return mb.const_null()
        if isinstance(expr, ast.This):
            return "this"
        if isinstance(expr, ast.Name):
            kind = expr.binding[0]
            if kind == "local":
                return expr.binding[1]
            if kind == "field":
                return mb.load_field("this", expr.binding[1].name)
            sig = expr.binding[1]  # static
            return mb.load_static(sig.owner, sig.name)
        if isinstance(expr, ast.FieldAccess):
            if expr.kind == "static":
                sig = expr.field_def
                return mb.load_static(sig.owner, sig.name)
            if expr.kind == "arraylen":
                return mb.array_len(self._gen_expr(expr.obj))
            return mb.load_field(self._gen_expr(expr.obj), expr.name)
        if isinstance(expr, ast.Index):
            arr = self._gen_expr(expr.arr)
            idx = self._gen_expr(expr.idx)
            return mb.array_load(arr, idx)
        if isinstance(expr, ast.CallExpr):
            return self._gen_call(expr, want_value)
        if isinstance(expr, ast.New):
            obj = mb.new_object(expr.class_name)
            args = [self._gen_expr(a) for a in expr.args]
            mb.call_special(expr.class_name, "<init>", obj, args)
            return obj
        if isinstance(expr, ast.NewArray):
            size = self._gen_expr(expr.size)
            return mb.new_array(expr.type.elem, size)
        if isinstance(expr, ast.Unary):
            operand = self._gen_expr(expr.operand)
            op = ins.UN_NEG if expr.op == "-" else ins.UN_NOT
            return mb.unop(op, operand)
        if isinstance(expr, ast.Binary):
            return self._gen_binary(expr)
        raise TypeError_(f"cannot generate {type(expr).__name__}",
                         expr.line, expr.col)

    def _gen_call(self, expr: ast.CallExpr, want_value: bool) -> str:
        mb = self.mb
        kind = expr.kind
        returns_value = expr.type != irt.VOID

        if kind == "intrinsic":
            args = []
            # String instance methods pass the receiver as first operand.
            if expr.recv is not None and not (
                    isinstance(expr.recv, ast.Name)
                    and expr.recv.binding[0] == "class"):
                args.append(self._gen_expr(expr.recv))
            args.extend(self._gen_expr(a) for a in expr.args)
            return mb.intrinsic(expr.intrinsic, args)

        if kind == "native":
            args = [self._gen_expr(a) for a in expr.args]
            dest = mb.temp() if returns_value else None
            mb.call_native(expr.native, args, dest=dest)
            return dest

        if kind == "static":
            args = [self._gen_expr(a) for a in expr.args]
            dest = mb.temp() if returns_value else None
            mb.call_static(expr.target_class, expr.method, args, dest=dest)
            return dest

        # virtual
        if expr.recv is None or (isinstance(expr.recv, ast.Name)
                                 and expr.recv.binding[0] == "class"):
            recv = "this"
        else:
            recv = self._gen_expr(expr.recv)
        args = [self._gen_expr(a) for a in expr.args]
        dest = mb.temp() if returns_value else None
        mb.call_virtual(expr.target_class, expr.method, recv, args,
                        dest=dest)
        return dest

    def _gen_binary(self, expr: ast.Binary) -> str:
        mb = self.mb
        lowered = expr.lowered
        if lowered in ("and", "or"):
            result = mb.temp()
            lhs = self._gen_expr(expr.lhs)
            mb.move(result, lhs)
            rhs_label = mb.fresh_label("sc_rhs")
            end_label = mb.fresh_label("sc_end")
            if lowered == "and":
                mb.branch(result, rhs_label, end_label)
            else:
                mb.branch(result, end_label, rhs_label)
            mb.label(rhs_label)
            rhs = self._gen_expr(expr.rhs)
            mb.move(result, rhs)
            mb.label(end_label)
            return result
        if lowered == "concat":
            lhs = self._gen_expr(expr.lhs)
            lhs = self._coerce_to_string(expr.lhs, lhs)
            rhs = self._gen_expr(expr.rhs)
            rhs = self._coerce_to_string(expr.rhs, rhs)
            return mb.binop(ins.BIN_CONCAT, lhs, rhs)
        if lowered in ("seq", "sne"):
            lhs = self._gen_expr(expr.lhs)
            rhs = self._gen_expr(expr.rhs)
            eq = mb.intrinsic(ins.INTR_SEQ, [lhs, rhs])
            if lowered == "sne":
                return mb.unop(ins.UN_NOT, eq)
            return eq
        lhs = self._gen_expr(expr.lhs)
        rhs = self._gen_expr(expr.rhs)
        return mb.binop(expr.op, lhs, rhs)

    def _coerce_to_string(self, node: ast.Expr, reg: str) -> str:
        if node.type == irt.INT:
            return self.mb.intrinsic(ins.INTR_ITOS, [reg])
        return reg


def compile_source(source: str, entry_class: str = "Main",
                   entry_method: str = "main", verify: bool = True):
    """Compile MiniJ source text to a finalized IR Program."""
    program_decl = parse(source)
    table = build_class_table(program_decl)
    check(program_decl, table)
    generator = CodeGen(program_decl, table)
    program = generator.generate()
    # Entry signature check: static void main().
    info = table.classes.get(entry_class)
    if info is None:
        raise TypeError_(f"no class {entry_class!r} for program entry")
    sig = info.methods.get(entry_method)
    if sig is None or not sig.is_static or sig.param_types \
            or sig.return_type != irt.VOID:
        raise TypeError_(
            f"program entry must be 'static void {entry_method}()' "
            f"in class {entry_class}")
    program.sources["<main>"] = source
    return program.finalize(entry_class, entry_method, verify=verify)
