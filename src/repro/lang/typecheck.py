"""Pass 2 of semantic analysis: type checking and name resolution.

Walks every method body, computes the type of each expression, resolves
identifiers to locals / fields / statics / class qualifiers, resolves
calls to virtual / static / native / intrinsic targets, and annotates
the AST in place for the code generator.
"""

from __future__ import annotations

from ..ir import instructions as ins
from ..ir import types as irt
from . import ast
from .errors import TypeError_
from .resolver import BUILTIN_CLASSES, ClassTable, resolve_type

#: String instance methods: name -> (intrinsic, extra arg types, result).
STRING_METHODS = {
    "length": (ins.INTR_SLEN, (), irt.INT),
    "charAt": (ins.INTR_SCHARAT, (irt.INT,), irt.INT),
    "equals": (ins.INTR_SEQ, (irt.STRING,), irt.BOOL),
    "hash": (ins.INTR_SHASH, (), irt.INT),
    "compare": (ins.INTR_SCMP, (irt.STRING,), irt.INT),
}

#: Static builtins on the Str class.
STR_STATICS = {
    "ofInt": (ins.INTR_ITOS, (irt.INT,), irt.STRING),
    "chr": (ins.INTR_CHR, (irt.INT,), irt.STRING),
}

#: Native methods on the Sys class: name -> (native key, arg types, result).
SYS_NATIVES = {
    "print": ("print", (irt.STRING,), irt.VOID),
    "println": ("println", (irt.STRING,), irt.VOID),
    "printInt": ("print_int", (irt.INT,), irt.VOID),
    "printBool": ("print_bool", (irt.BOOL,), irt.VOID),
    "phase": ("phase", (irt.STRING,), irt.VOID),
}


class Checker:
    def __init__(self, table: ClassTable):
        self.table = table
        self.current_class = None     # ClassInfo
        self.current_sig = None       # MethodSig of the enclosing method
        self.scopes = []              # [{name: (reg, Type)}]
        self.loop_depth = 0
        self._reg_counter = 0

    # -- entry point ---------------------------------------------------------

    def check_program(self, program: ast.ProgramDecl):
        for decl in program.classes:
            info = self.table.classes[decl.name]
            for method in decl.methods:
                self._check_method(info, method,
                                   info.methods[method.name])
            for ctor in decl.constructors:
                self._check_method(info, ctor, info.ctor)

    # -- methods ----------------------------------------------------------------

    def _check_method(self, class_info, method: ast.MethodDecl, sig):
        self.current_class = class_info
        self.current_sig = sig
        self.loop_depth = 0
        self._reg_counter = 0
        scope = {}
        for name, type_ in zip(sig.param_names, sig.param_types):
            scope[name] = (name, type_)  # params use their own name as reg
        self.scopes = [scope]
        self._check_stmt(method.body)
        if sig.return_type != irt.VOID \
                and not _always_returns(method.body):
            raise TypeError_(
                f"method {class_info.name}.{method.name} may finish "
                "without returning a value", method.line, method.col)
        self.scopes = []

    # -- scope helpers -------------------------------------------------------------

    def _lookup_local(self, name: str):
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    def _declare_local(self, node: ast.VarDecl, type_: irt.Type) -> str:
        scope = self.scopes[-1]
        if node.name in scope:
            raise TypeError_(f"variable {node.name!r} already declared "
                             "in this scope", node.line, node.col)
        self._reg_counter += 1
        reg = f"{node.name}${self._reg_counter}"
        scope[node.name] = (reg, type_)
        return reg

    def _error(self, node, message: str):
        raise TypeError_(message, node.line, node.col)

    # -- statements -------------------------------------------------------------------

    def _check_stmt(self, stmt: ast.Stmt):
        if isinstance(stmt, ast.Block):
            self.scopes.append({})
            for inner in stmt.stmts:
                self._check_stmt(inner)
            self.scopes.pop()
        elif isinstance(stmt, ast.VarDecl):
            type_ = resolve_type(self.table, stmt.type_expr)
            if stmt.init is not None:
                init_type = self._check_expr(stmt.init)
                self._require_assignable(stmt, type_, init_type,
                                         "initializer")
            # Declare after checking the init: `int x = x;` is an error.
            stmt.reg = self._declare_local(stmt, type_)
        elif isinstance(stmt, ast.Assign):
            self._check_assign(stmt)
        elif isinstance(stmt, ast.IncDec):
            target_type = self._check_lvalue(stmt.target)
            if target_type != irt.INT:
                self._error(stmt, "++/-- requires an int target")
        elif isinstance(stmt, ast.If):
            self._require_bool(stmt.cond)
            self._check_stmt(stmt.then_stmt)
            if stmt.else_stmt is not None:
                self._check_stmt(stmt.else_stmt)
        elif isinstance(stmt, ast.While):
            self._require_bool(stmt.cond)
            self.loop_depth += 1
            self._check_stmt(stmt.body)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.For):
            self.scopes.append({})
            if stmt.init is not None:
                self._check_stmt(stmt.init)
            if stmt.cond is not None:
                self._require_bool(stmt.cond)
            if stmt.update is not None:
                self._check_stmt(stmt.update)
            self.loop_depth += 1
            self._check_stmt(stmt.body)
            self.loop_depth -= 1
            self.scopes.pop()
        elif isinstance(stmt, ast.Return):
            want = self.current_sig.return_type
            if stmt.value is None:
                if want != irt.VOID:
                    self._error(stmt, "missing return value")
            else:
                if want == irt.VOID:
                    self._error(stmt, "void method cannot return a value")
                got = self._check_expr(stmt.value)
                self._require_assignable(stmt, want, got, "return value")
        elif isinstance(stmt, ast.Break):
            if self.loop_depth == 0:
                self._error(stmt, "break outside a loop")
        elif isinstance(stmt, ast.Continue):
            if self.loop_depth == 0:
                self._error(stmt, "continue outside a loop")
        elif isinstance(stmt, ast.ExprStmt):
            if not isinstance(stmt.expr, ast.CallExpr):
                self._error(stmt, "expression statement must be a call")
            self._check_expr(stmt.expr)
        elif isinstance(stmt, ast.SuperCall):
            self._check_super_call(stmt)
        else:  # pragma: no cover - defensive
            self._error(stmt, f"unknown statement {type(stmt).__name__}")

    def _check_assign(self, stmt: ast.Assign):
        target_type = self._check_lvalue(stmt.target)
        value_type = self._check_expr(stmt.value)
        if stmt.op == "":
            self._require_assignable(stmt, target_type, value_type,
                                     "assignment")
            return
        if stmt.op == "+" and target_type == irt.STRING:
            if value_type not in (irt.STRING, irt.INT):
                self._error(stmt, "can only append string or int "
                            "to a string")
            return
        if target_type != irt.INT or value_type != irt.INT:
            self._error(stmt, f"compound '{stmt.op}=' requires int "
                        "operands")

    def _check_lvalue(self, expr: ast.Expr) -> irt.Type:
        type_ = self._check_expr(expr)
        if isinstance(expr, ast.Name):
            if expr.binding[0] == "class":
                self._error(expr, "cannot assign to a class name")
        elif isinstance(expr, ast.FieldAccess):
            if expr.kind == "arraylen":
                self._error(expr, "array length is read-only")
        elif not isinstance(expr, ast.Index):
            self._error(expr, "invalid assignment target")
        return type_

    def _check_super_call(self, stmt: ast.SuperCall):
        if not self.current_sig.is_constructor:
            self._error(stmt, "super(...) only allowed in constructors")
        super_name = self.current_class.super_name
        if super_name is None:
            self._error(stmt, f"class {self.current_class.name} has "
                        "no superclass")
        ctor = self.table.find_ctor(super_name)
        param_types = ctor.param_types if ctor is not None else []
        self._check_args(stmt, stmt.args, param_types,
                         f"super constructor of {super_name}")
        stmt.resolved_class = super_name

    # -- expressions ------------------------------------------------------------------

    def _require_bool(self, expr: ast.Expr):
        if self._check_expr(expr) != irt.BOOL:
            self._error(expr, "condition must be bool")

    def _require_assignable(self, node, target, source, what: str):
        if not self.table.assignable(target, source):
            self._error(node, f"{what}: cannot assign {source} to {target}")

    def _check_args(self, node, args, param_types, what: str):
        if len(args) != len(param_types):
            self._error(node, f"{what} expects {len(param_types)} "
                        f"argument(s), got {len(args)}")
        for arg, want in zip(args, param_types):
            got = self._check_expr(arg)
            self._require_assignable(arg, want, got, "argument")

    def _check_expr(self, expr: ast.Expr) -> irt.Type:
        type_ = self._infer(expr)
        expr.type = type_
        return type_

    def _infer(self, expr: ast.Expr) -> irt.Type:
        if isinstance(expr, ast.IntLit):
            return irt.INT
        if isinstance(expr, ast.BoolLit):
            return irt.BOOL
        if isinstance(expr, ast.StringLit):
            return irt.STRING
        if isinstance(expr, ast.NullLit):
            return irt.NULL
        if isinstance(expr, ast.This):
            if self.current_sig.is_static:
                self._error(expr, "'this' in a static method")
            return irt.class_of(self.current_class.name)
        if isinstance(expr, ast.Name):
            return self._infer_name(expr, as_value=True)
        if isinstance(expr, ast.FieldAccess):
            return self._infer_field_access(expr)
        if isinstance(expr, ast.Index):
            arr_type = self._check_expr(expr.arr)
            if not isinstance(arr_type, irt.ArrayType):
                self._error(expr, f"indexing a non-array ({arr_type})")
            idx_type = self._check_expr(expr.idx)
            if idx_type != irt.INT:
                self._error(expr, "array index must be int")
            return arr_type.elem
        if isinstance(expr, ast.CallExpr):
            return self._infer_call(expr)
        if isinstance(expr, ast.New):
            return self._infer_new(expr)
        if isinstance(expr, ast.NewArray):
            elem = resolve_type(self.table, expr.elem_type_expr)
            size_type = self._check_expr(expr.size)
            if size_type != irt.INT:
                self._error(expr, "array size must be int")
            return irt.array_of(elem)
        if isinstance(expr, ast.Unary):
            return self._infer_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._infer_binary(expr)
        self._error(expr, f"unknown expression {type(expr).__name__}")

    def _infer_name(self, expr: ast.Name, as_value: bool) -> irt.Type:
        local = self._lookup_local(expr.ident)
        if local is not None:
            reg, type_ = local
            expr.binding = ("local", reg)
            return type_
        if not self.current_sig.is_static:
            field = self.table.find_field(self.current_class.name,
                                          expr.ident)
            if field is not None:
                expr.binding = ("field", field)
                return field.type
        static = self.table.find_static_field(self.current_class.name,
                                              expr.ident)
        if static is not None:
            expr.binding = ("static", static)
            return static.type
        if expr.ident in self.table.classes \
                or expr.ident in BUILTIN_CLASSES:
            expr.binding = ("class", expr.ident)
            if as_value:
                self._error(expr, f"class name {expr.ident!r} used "
                            "as a value")
            return irt.VOID
        self._error(expr, f"undefined name {expr.ident!r}")

    def _infer_field_access(self, expr: ast.FieldAccess) -> irt.Type:
        # Class-qualified static access: ClassName.field
        if isinstance(expr.obj, ast.Name):
            obj_type = self._infer_name(expr.obj, as_value=False)
            expr.obj.type = obj_type
            if expr.obj.binding[0] == "class":
                class_name = expr.obj.binding[1]
                if class_name in BUILTIN_CLASSES:
                    self._error(expr, f"{class_name} has no fields")
                sig = self.table.find_static_field(class_name, expr.name)
                if sig is None:
                    self._error(expr, f"no static field "
                                f"{class_name}.{expr.name}")
                expr.kind = "static"
                expr.field_def = sig
                return sig.type
        else:
            obj_type = self._check_expr(expr.obj)

        if isinstance(obj_type, irt.ArrayType):
            if expr.name != "length":
                self._error(expr, "arrays only have .length")
            expr.kind = "arraylen"
            return irt.INT
        if isinstance(obj_type, irt.ClassType):
            sig = self.table.find_field(obj_type.name, expr.name)
            if sig is None:
                self._error(expr, f"no field {expr.name!r} in class "
                            f"{obj_type.name}")
            expr.kind = "field"
            expr.field_def = sig
            return sig.type
        if obj_type == irt.STRING:
            self._error(expr, "strings have no fields (use .length())")
        self._error(expr, f"field access on non-object type {obj_type}")

    def _infer_call(self, expr: ast.CallExpr) -> irt.Type:
        recv = expr.recv
        # Unqualified call: this.m(...) or static m(...) in current class.
        if recv is None:
            sig = self.table.find_method(self.current_class.name,
                                         expr.method)
            if sig is None:
                self._error(expr, f"undefined method {expr.method!r}")
            if not sig.is_static and self.current_sig.is_static:
                self._error(expr, f"instance method {expr.method!r} "
                            "called from a static method")
            self._check_args(expr, expr.args, sig.param_types,
                             f"method {expr.method}")
            expr.kind = "static" if sig.is_static else "virtual"
            expr.target_class = (sig.owner if sig.is_static
                                 else self.current_class.name)
            expr.target_method = sig
            return sig.return_type

        # Class-qualified call: ClassName.m(...), Sys.m(...), Str.m(...).
        if isinstance(recv, ast.Name):
            recv.type = self._infer_name(recv, as_value=False)
            if recv.binding[0] == "class":
                return self._infer_class_call(expr, recv.binding[1])

        # Instance call: expr.m(...).
        recv_type = recv.type if recv.type is not None \
            else self._check_expr(recv)
        if recv_type == irt.STRING:
            entry = STRING_METHODS.get(expr.method)
            if entry is None:
                self._error(expr, f"no string method {expr.method!r}")
            intrinsic, arg_types, result = entry
            self._check_args(expr, expr.args, list(arg_types),
                             f"string method {expr.method}")
            expr.kind = "intrinsic"
            expr.intrinsic = intrinsic
            return result
        if isinstance(recv_type, irt.ClassType):
            sig = self.table.find_method(recv_type.name, expr.method)
            if sig is None:
                self._error(expr, f"no method {expr.method!r} in class "
                            f"{recv_type.name}")
            if sig.is_static:
                self._error(expr, f"static method "
                            f"{sig.owner}.{expr.method} called on an "
                            "instance (qualify with the class name)")
            self._check_args(expr, expr.args, sig.param_types,
                             f"method {recv_type.name}.{expr.method}")
            expr.kind = "virtual"
            expr.target_class = recv_type.name
            expr.target_method = sig
            return sig.return_type
        self._error(expr, f"cannot call methods on type {recv_type}")

    def _infer_class_call(self, expr: ast.CallExpr,
                          class_name: str) -> irt.Type:
        if class_name == "Sys":
            entry = SYS_NATIVES.get(expr.method)
            if entry is None:
                self._error(expr, f"no Sys native {expr.method!r}")
            native, arg_types, result = entry
            self._check_args(expr, expr.args, list(arg_types),
                             f"Sys.{expr.method}")
            expr.kind = "native"
            expr.native = native
            return result
        if class_name == "Str":
            entry = STR_STATICS.get(expr.method)
            if entry is None:
                self._error(expr, f"no Str builtin {expr.method!r}")
            intrinsic, arg_types, result = entry
            self._check_args(expr, expr.args, list(arg_types),
                             f"Str.{expr.method}")
            expr.kind = "intrinsic"
            expr.intrinsic = intrinsic
            return result
        sig = self.table.find_method(class_name, expr.method)
        if sig is None or not sig.is_static:
            self._error(expr, f"no static method "
                        f"{class_name}.{expr.method}")
        self._check_args(expr, expr.args, sig.param_types,
                         f"method {class_name}.{expr.method}")
        expr.kind = "static"
        expr.target_class = sig.owner
        expr.target_method = sig
        return sig.return_type

    def _infer_new(self, expr: ast.New) -> irt.Type:
        name = expr.class_name
        if name in BUILTIN_CLASSES:
            self._error(expr, f"cannot instantiate builtin {name}")
        if name not in self.table.classes:
            self._error(expr, f"unknown class {name!r}")
        ctor = self.table.find_ctor(name)
        param_types = ctor.param_types if ctor is not None else []
        self._check_args(expr, expr.args, param_types,
                         f"constructor of {name}")
        expr.ctor_class = name
        return irt.class_of(name)

    def _infer_unary(self, expr: ast.Unary) -> irt.Type:
        operand = self._check_expr(expr.operand)
        if expr.op == "-":
            if operand != irt.INT:
                self._error(expr, "unary - requires int")
            return irt.INT
        if operand != irt.BOOL:
            self._error(expr, "! requires bool")
        return irt.BOOL

    def _infer_binary(self, expr: ast.Binary) -> irt.Type:
        op = expr.op
        if op in ("&&", "||"):
            self._require_bool(expr.lhs)
            self._require_bool(expr.rhs)
            expr.lowered = "and" if op == "&&" else "or"
            return irt.BOOL
        lhs = self._check_expr(expr.lhs)
        rhs = self._check_expr(expr.rhs)
        if op == "+":
            if lhs == irt.INT and rhs == irt.INT:
                return irt.INT
            if irt.STRING in (lhs, rhs):
                other = rhs if lhs == irt.STRING else lhs
                if other not in (irt.STRING, irt.INT):
                    self._error(expr, f"cannot concatenate {other} "
                                "to a string")
                expr.lowered = "concat"
                return irt.STRING
            self._error(expr, f"+ requires ints or strings "
                        f"({lhs} + {rhs})")
        if op in ("-", "*", "/", "%", "<<", ">>"):
            if lhs != irt.INT or rhs != irt.INT:
                self._error(expr, f"{op} requires int operands")
            return irt.INT
        if op in ("&", "|", "^"):
            if lhs == irt.INT and rhs == irt.INT:
                return irt.INT
            if lhs == irt.BOOL and rhs == irt.BOOL:
                return irt.BOOL
            self._error(expr, f"{op} requires two ints or two bools")
        if op in ("<", "<=", ">", ">="):
            if lhs != irt.INT or rhs != irt.INT:
                self._error(expr, f"{op} requires int operands "
                            "(compare strings with .compare())")
            return irt.BOOL
        if op in ("==", "!="):
            if irt.STRING in (lhs, rhs):
                other = rhs if lhs == irt.STRING else lhs
                if other != irt.STRING and not isinstance(other,
                                                          irt.NullType):
                    self._error(expr, f"cannot compare string with "
                                f"{other}")
                expr.lowered = "seq" if op == "==" else "sne"
                return irt.BOOL
            ok = (lhs == rhs
                  or (lhs.is_reference() and rhs.is_reference()
                      and (self.table.assignable(lhs, rhs)
                           or self.table.assignable(rhs, lhs))))
            if not ok:
                self._error(expr, f"cannot compare {lhs} with {rhs}")
            return irt.BOOL
        self._error(expr, f"unknown operator {op!r}")


def _always_returns(stmt: ast.Stmt) -> bool:
    """Conservative 'all paths return' check (Java-style)."""
    if isinstance(stmt, ast.Return):
        return True
    if isinstance(stmt, ast.Block):
        return any(_always_returns(s) for s in stmt.stmts)
    if isinstance(stmt, ast.If):
        return (stmt.else_stmt is not None
                and _always_returns(stmt.then_stmt)
                and _always_returns(stmt.else_stmt))
    return False


def check(program: ast.ProgramDecl, table: ClassTable):
    """Type-check ``program`` against ``table``, annotating the AST."""
    Checker(table).check_program(program)
