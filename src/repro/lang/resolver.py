"""Pass 1 of semantic analysis: collect class/member signatures.

Builds a :class:`ClassTable` mapping class names to resolved member
signatures, with all syntactic type expressions resolved to
:mod:`repro.ir.types` objects.  The type checker (pass 2) consults the
table; the code generator reuses it for ctor lookup.
"""

from __future__ import annotations

from ..ir import types as irt
from . import ast
from .errors import TypeError_

#: Class names reserved for VM builtins (natives and intrinsics).
BUILTIN_CLASSES = frozenset({"Sys", "Str"})


class FieldSig:
    __slots__ = ("name", "type", "is_static", "owner")

    def __init__(self, name, type_, is_static, owner):
        self.name = name
        self.type = type_
        self.is_static = is_static
        self.owner = owner  # class name declaring the field


class MethodSig:
    __slots__ = ("name", "param_types", "param_names", "return_type",
                 "is_static", "owner", "is_constructor")

    def __init__(self, name, param_types, param_names, return_type,
                 is_static, owner, is_constructor=False):
        self.name = name
        self.param_types = param_types
        self.param_names = param_names
        self.return_type = return_type
        self.is_static = is_static
        self.owner = owner
        self.is_constructor = is_constructor


class ClassInfo:
    __slots__ = ("name", "super_name", "fields", "static_fields", "methods",
                 "ctor", "decl")

    def __init__(self, name, super_name, decl):
        self.name = name
        self.super_name = super_name
        self.fields = {}          # name -> FieldSig (instance)
        self.static_fields = {}   # name -> FieldSig
        self.methods = {}         # name -> MethodSig
        self.ctor = None          # MethodSig | None
        self.decl = decl          # ClassDecl AST node


class ClassTable:
    """All classes of a program with hierarchy-aware lookups."""

    def __init__(self):
        self.classes = {}  # name -> ClassInfo

    # -- hierarchy ---------------------------------------------------------

    def supers(self, name: str):
        """Yield ``name`` and its superclasses, nearest first."""
        info = self.classes.get(name)
        while info is not None:
            yield info
            info = self.classes.get(info.super_name) \
                if info.super_name else None

    def is_subclass(self, sub: str, sup: str) -> bool:
        return any(info.name == sup for info in self.supers(sub))

    def assignable(self, target: irt.Type, source: irt.Type) -> bool:
        return irt.is_assignable(target, source, self.is_subclass)

    # -- member lookup -------------------------------------------------------

    def find_field(self, class_name: str, field: str):
        for info in self.supers(class_name):
            sig = info.fields.get(field)
            if sig is not None:
                return sig
        return None

    def find_static_field(self, class_name: str, field: str):
        for info in self.supers(class_name):
            sig = info.static_fields.get(field)
            if sig is not None:
                return sig
        return None

    def find_method(self, class_name: str, method: str):
        for info in self.supers(class_name):
            sig = info.methods.get(method)
            if sig is not None:
                return sig
        return None

    def find_ctor(self, class_name: str):
        info = self.classes.get(class_name)
        return info.ctor if info is not None else None


def resolve_type(table: ClassTable, type_expr: ast.TypeExpr) -> irt.Type:
    """Resolve a syntactic type to an IR type, or raise TypeError_."""
    base = type_expr.base
    if base == "int":
        result = irt.INT
    elif base == "bool":
        result = irt.BOOL
    elif base == "string":
        result = irt.STRING
    elif base == "void":
        result = irt.VOID
    elif base in BUILTIN_CLASSES:
        raise TypeError_(f"{base} is a builtin and not a value type",
                         type_expr.line, type_expr.col)
    elif base in table.classes:
        result = irt.class_of(base)
    else:
        raise TypeError_(f"unknown type {base!r}",
                         type_expr.line, type_expr.col)
    for _ in range(type_expr.dims):
        result = irt.array_of(result)
    return result


def build_class_table(program: ast.ProgramDecl) -> ClassTable:
    table = ClassTable()

    # First: register class names so types can refer to any class.
    for decl in program.classes:
        if decl.name in BUILTIN_CLASSES:
            raise TypeError_(f"class name {decl.name!r} is reserved",
                             decl.line, decl.col)
        if decl.name in table.classes:
            raise TypeError_(f"duplicate class {decl.name!r}",
                             decl.line, decl.col)
        table.classes[decl.name] = ClassInfo(decl.name, decl.super_name,
                                             decl)

    # Validate supers and reject cycles.
    for info in table.classes.values():
        if info.super_name is not None:
            if info.super_name not in table.classes:
                decl = info.decl
                raise TypeError_(
                    f"class {info.name} extends unknown class "
                    f"{info.super_name}", decl.line, decl.col)
        seen = set()
        for ancestor in table.supers(info.name):
            if ancestor.name in seen:
                raise TypeError_(
                    f"inheritance cycle through {ancestor.name}",
                    info.decl.line, info.decl.col)
            seen.add(ancestor.name)

    # Second: resolve member signatures.
    for decl in program.classes:
        info = table.classes[decl.name]
        for field in decl.fields:
            type_ = resolve_type(table, field.type_expr)
            sig = FieldSig(field.name, type_, field.is_static, decl.name)
            target = info.static_fields if field.is_static else info.fields
            if field.name in info.fields or field.name in info.static_fields:
                raise TypeError_(
                    f"duplicate field {decl.name}.{field.name}",
                    field.line, field.col)
            target[field.name] = sig
        for method in decl.methods:
            _add_method(table, info, method)
        if len(decl.constructors) > 1:
            ctor = decl.constructors[1]
            raise TypeError_(
                f"class {decl.name} has more than one constructor "
                "(MiniJ has no overloading)", ctor.line, ctor.col)
        if decl.constructors:
            ctor = decl.constructors[0]
            param_types = [resolve_type(table, t) for t, _ in ctor.params]
            param_names = [n for _, n in ctor.params]
            _check_param_names(ctor, param_names)
            info.ctor = MethodSig("<init>", param_types, param_names,
                                  irt.VOID, False, decl.name,
                                  is_constructor=True)

    # Third: check overrides keep the signature (no overloading).
    for info in table.classes.values():
        if info.super_name is None:
            continue
        for name, sig in info.methods.items():
            inherited = table.find_method(info.super_name, name)
            if inherited is None:
                continue
            if inherited.is_static or sig.is_static:
                raise TypeError_(
                    f"{info.name}.{name} conflicts with a static method "
                    f"in {inherited.owner}",
                    info.decl.line, info.decl.col)
            if (inherited.param_types != sig.param_types
                    or inherited.return_type != sig.return_type):
                raise TypeError_(
                    f"override {info.name}.{name} changes the signature "
                    f"of {inherited.owner}.{name}",
                    info.decl.line, info.decl.col)
    return table


def _add_method(table: ClassTable, info: ClassInfo, method: ast.MethodDecl):
    if method.name in info.methods:
        raise TypeError_(
            f"duplicate method {info.name}.{method.name} "
            "(MiniJ has no overloading)", method.line, method.col)
    param_types = [resolve_type(table, t) for t, _ in method.params]
    param_names = [n for _, n in method.params]
    _check_param_names(method, param_names)
    return_type = resolve_type(table, method.return_type)
    info.methods[method.name] = MethodSig(
        method.name, param_types, param_names, return_type,
        method.is_static, info.name)


def _check_param_names(method: ast.MethodDecl, names):
    if len(set(names)) != len(names):
        raise TypeError_(f"duplicate parameter name in {method.name}",
                         method.line, method.col)
    if "this" in names:
        raise TypeError_("'this' cannot be a parameter name",
                         method.line, method.col)
