"""MiniJ frontend: lexer, parser, type checker, and TAC code generator.

The one-call entry point is :func:`compile_source`::

    from repro.lang import compile_source
    program = compile_source(source_text)        # finalized IR Program
"""

from .ast import ProgramDecl
from .codegen import compile_source
from .errors import CompileError, LexError, ParseError, TypeError_
from .formatter import format_program_decl, format_source
from .lexer import tokenize
from .parser import parse
from .resolver import ClassTable, build_class_table
from .typecheck import check

__all__ = [
    "compile_source", "parse", "tokenize", "check", "build_class_table",
    "ClassTable", "ProgramDecl",
    "CompileError", "LexError", "ParseError", "TypeError_",
    "format_source", "format_program_decl",
]
