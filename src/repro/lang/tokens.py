"""Token kinds for the MiniJ lexer."""

from __future__ import annotations

# Token kind constants.
T_EOF = "eof"
T_IDENT = "ident"
T_INT = "int_lit"
T_STRING = "string_lit"
T_KEYWORD = "keyword"
T_PUNCT = "punct"

KEYWORDS = frozenset({
    "class", "extends", "static", "void", "int", "bool", "string",
    "if", "else", "while", "for", "return", "break", "continue",
    "new", "null", "this", "true", "false", "super",
})

# Multi-character punctuation, longest-match-first.
PUNCT_2PLUS = (
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "++", "--",
)
PUNCT_1 = "+-*/%<>=!&|^(){}[];,."


class Token:
    __slots__ = ("kind", "text", "line", "col")

    def __init__(self, kind: str, text: str, line: int, col: int):
        self.kind = kind
        self.text = text
        self.line = line
        self.col = col

    def is_(self, kind: str, text=None) -> bool:
        return self.kind == kind and (text is None or self.text == text)

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"
