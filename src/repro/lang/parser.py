"""Recursive-descent parser for MiniJ.

Grammar sketch (see README for the full language reference)::

    program   := classDecl+
    classDecl := 'class' ID ('extends' ID)? '{' member* '}'
    member    := ('static')? type ID ';'                  field
               | ('static')? type ID '(' params? ')' block method
               | ID '(' params? ')' block                 constructor
    stmt      := varDecl | if | while | for | return | break | continue
               | super '(' args ')' ';' | assignment/exprStmt | block
    expr      := or-expression with Java precedence; see _parse_* below
"""

from __future__ import annotations

from . import ast
from .errors import ParseError
from .lexer import tokenize
from .tokens import T_EOF, T_IDENT, T_INT, T_KEYWORD, T_PUNCT, T_STRING

_TYPE_KEYWORDS = ("int", "bool", "string")
_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=")


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token plumbing ------------------------------------------------------

    def peek(self, offset: int = 0):
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self):
        tok = self.tokens[self.pos]
        if tok.kind != T_EOF:
            self.pos += 1
        return tok

    def check(self, kind: str, text=None) -> bool:
        return self.peek().is_(kind, text)

    def accept(self, kind: str, text=None):
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text=None):
        tok = self.peek()
        if not tok.is_(kind, text):
            want = text if text is not None else kind
            got = tok.text or tok.kind
            raise ParseError(f"expected {want!r}, found {got!r}",
                             tok.line, tok.col)
        return self.advance()

    def _error(self, message: str):
        tok = self.peek()
        raise ParseError(message, tok.line, tok.col)

    # -- program -----------------------------------------------------------------

    def parse_program(self) -> ast.ProgramDecl:
        classes = []
        first = self.peek()
        while not self.check(T_EOF):
            classes.append(self.parse_class())
        if not classes:
            raise ParseError("empty program", first.line, first.col)
        return ast.ProgramDecl(classes, first.line, first.col)

    def parse_class(self) -> ast.ClassDecl:
        start = self.expect(T_KEYWORD, "class")
        name = self.expect(T_IDENT).text
        super_name = None
        if self.accept(T_KEYWORD, "extends"):
            super_name = self.expect(T_IDENT).text
        self.expect(T_PUNCT, "{")
        fields, methods, constructors = [], [], []
        while not self.accept(T_PUNCT, "}"):
            member = self.parse_member(name)
            if isinstance(member, ast.FieldDecl):
                fields.append(member)
            elif member.is_constructor:
                constructors.append(member)
            else:
                methods.append(member)
        return ast.ClassDecl(name, super_name, fields, methods, constructors,
                             start.line, start.col)

    def parse_member(self, class_name: str):
        start = self.peek()
        is_static = bool(self.accept(T_KEYWORD, "static"))

        # Constructor: ClassName '(' ...
        if (not is_static and self.check(T_IDENT, class_name)
                and self.peek(1).is_(T_PUNCT, "(")):
            self.advance()
            params = self.parse_params()
            body = self.parse_block()
            return ast.MethodDecl(
                ast.TypeExpr("void", 0, start.line, start.col),
                "<init>", params, body, is_static=False,
                is_constructor=True, line=start.line, col=start.col)

        type_expr = self.parse_type(allow_void=True)
        name = self.expect(T_IDENT).text
        if self.check(T_PUNCT, "("):
            params = self.parse_params()
            body = self.parse_block()
            return ast.MethodDecl(type_expr, name, params, body, is_static,
                                  line=start.line, col=start.col)
        self.expect(T_PUNCT, ";")
        if type_expr.base == "void":
            raise ParseError("field cannot have void type",
                             start.line, start.col)
        return ast.FieldDecl(type_expr, name, is_static,
                             start.line, start.col)

    def parse_params(self):
        self.expect(T_PUNCT, "(")
        params = []
        if not self.check(T_PUNCT, ")"):
            while True:
                type_expr = self.parse_type(allow_void=False)
                name = self.expect(T_IDENT).text
                params.append((type_expr, name))
                if not self.accept(T_PUNCT, ","):
                    break
        self.expect(T_PUNCT, ")")
        return params

    # -- types ---------------------------------------------------------------------

    def parse_type(self, allow_void: bool) -> ast.TypeExpr:
        tok = self.peek()
        if tok.kind == T_KEYWORD and tok.text in _TYPE_KEYWORDS + ("void",):
            base = self.advance().text
        elif tok.kind == T_IDENT:
            base = self.advance().text
        else:
            self._error(f"expected a type, found {tok.text!r}")
        if base == "void" and not allow_void:
            raise ParseError("void is not allowed here", tok.line, tok.col)
        dims = 0
        while self.check(T_PUNCT, "[") and self.peek(1).is_(T_PUNCT, "]"):
            self.advance()
            self.advance()
            dims += 1
        if base == "void" and dims:
            raise ParseError("cannot make an array of void",
                             tok.line, tok.col)
        return ast.TypeExpr(base, dims, tok.line, tok.col)

    def _looks_like_var_decl(self) -> bool:
        """IDENT ('[' ']')* IDENT ⇒ a declaration with a class type."""
        if not self.check(T_IDENT):
            return False
        offset = 1
        while (self.peek(offset).is_(T_PUNCT, "[")
               and self.peek(offset + 1).is_(T_PUNCT, "]")):
            offset += 2
        return self.peek(offset).kind == T_IDENT

    # -- statements -------------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        start = self.expect(T_PUNCT, "{")
        stmts = []
        while not self.accept(T_PUNCT, "}"):
            stmts.append(self.parse_stmt())
        return ast.Block(stmts, start.line, start.col)

    def parse_stmt(self) -> ast.Stmt:
        tok = self.peek()
        if tok.is_(T_PUNCT, "{"):
            return self.parse_block()
        if tok.kind == T_KEYWORD:
            text = tok.text
            if text == "if":
                return self.parse_if()
            if text == "while":
                return self.parse_while()
            if text == "for":
                return self.parse_for()
            if text == "return":
                self.advance()
                value = None
                if not self.check(T_PUNCT, ";"):
                    value = self.parse_expr()
                self.expect(T_PUNCT, ";")
                return ast.Return(value, tok.line, tok.col)
            if text == "break":
                self.advance()
                self.expect(T_PUNCT, ";")
                return ast.Break(tok.line, tok.col)
            if text == "continue":
                self.advance()
                self.expect(T_PUNCT, ";")
                return ast.Continue(tok.line, tok.col)
            if text == "super":
                return self.parse_super_call()
            if text in _TYPE_KEYWORDS:
                stmt = self.parse_var_decl()
                self.expect(T_PUNCT, ";")
                return stmt
        if self._looks_like_var_decl():
            stmt = self.parse_var_decl()
            self.expect(T_PUNCT, ";")
            return stmt
        stmt = self.parse_simple_stmt()
        self.expect(T_PUNCT, ";")
        return stmt

    def parse_super_call(self) -> ast.SuperCall:
        start = self.expect(T_KEYWORD, "super")
        self.expect(T_PUNCT, "(")
        args = self.parse_args_after_lparen()
        self.expect(T_PUNCT, ";")
        return ast.SuperCall(args, start.line, start.col)

    def parse_var_decl(self) -> ast.VarDecl:
        start = self.peek()
        type_expr = self.parse_type(allow_void=False)
        name = self.expect(T_IDENT).text
        init = None
        if self.accept(T_PUNCT, "="):
            init = self.parse_expr()
        return ast.VarDecl(type_expr, name, init, start.line, start.col)

    def parse_simple_stmt(self) -> ast.Stmt:
        """Assignment, ++/--, or a bare call — without the semicolon."""
        start = self.peek()
        expr = self.parse_expr()
        tok = self.peek()
        if tok.kind == T_PUNCT and tok.text in _ASSIGN_OPS:
            self.advance()
            value = self.parse_expr()
            self._require_lvalue(expr)
            op = tok.text[:-1]  # '' for '=', '+' for '+=', etc.
            return ast.Assign(expr, op, value, start.line, start.col)
        if tok.is_(T_PUNCT, "++") or tok.is_(T_PUNCT, "--"):
            self.advance()
            self._require_lvalue(expr)
            delta = 1 if tok.text == "++" else -1
            return ast.IncDec(expr, delta, start.line, start.col)
        if not isinstance(expr, ast.CallExpr):
            raise ParseError("expression statement must be a call",
                             start.line, start.col)
        return ast.ExprStmt(expr, start.line, start.col)

    @staticmethod
    def _require_lvalue(expr):
        if not isinstance(expr, (ast.Name, ast.FieldAccess, ast.Index)):
            raise ParseError("invalid assignment target",
                             expr.line, expr.col)

    def parse_if(self) -> ast.If:
        start = self.expect(T_KEYWORD, "if")
        self.expect(T_PUNCT, "(")
        cond = self.parse_expr()
        self.expect(T_PUNCT, ")")
        then_stmt = self.parse_stmt()
        else_stmt = None
        if self.accept(T_KEYWORD, "else"):
            else_stmt = self.parse_stmt()
        return ast.If(cond, then_stmt, else_stmt, start.line, start.col)

    def parse_while(self) -> ast.While:
        start = self.expect(T_KEYWORD, "while")
        self.expect(T_PUNCT, "(")
        cond = self.parse_expr()
        self.expect(T_PUNCT, ")")
        body = self.parse_stmt()
        return ast.While(cond, body, start.line, start.col)

    def parse_for(self) -> ast.For:
        start = self.expect(T_KEYWORD, "for")
        self.expect(T_PUNCT, "(")
        init = None
        if not self.check(T_PUNCT, ";"):
            if (self.peek().kind == T_KEYWORD
                    and self.peek().text in _TYPE_KEYWORDS) \
                    or self._looks_like_var_decl():
                init = self.parse_var_decl()
            else:
                init = self.parse_simple_stmt()
        self.expect(T_PUNCT, ";")
        cond = None
        if not self.check(T_PUNCT, ";"):
            cond = self.parse_expr()
        self.expect(T_PUNCT, ";")
        update = None
        if not self.check(T_PUNCT, ")"):
            update = self.parse_simple_stmt()
        self.expect(T_PUNCT, ")")
        body = self.parse_stmt()
        return ast.For(init, cond, update, body, start.line, start.col)

    # -- expressions ---------------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        expr = self.parse_and()
        while self.check(T_PUNCT, "||"):
            tok = self.advance()
            rhs = self.parse_and()
            expr = ast.Binary("||", expr, rhs, tok.line, tok.col)
        return expr

    def parse_and(self) -> ast.Expr:
        expr = self.parse_bitor()
        while self.check(T_PUNCT, "&&"):
            tok = self.advance()
            rhs = self.parse_bitor()
            expr = ast.Binary("&&", expr, rhs, tok.line, tok.col)
        return expr

    def parse_bitor(self) -> ast.Expr:
        expr = self.parse_bitxor()
        while self.check(T_PUNCT, "|"):
            tok = self.advance()
            rhs = self.parse_bitxor()
            expr = ast.Binary("|", expr, rhs, tok.line, tok.col)
        return expr

    def parse_bitxor(self) -> ast.Expr:
        expr = self.parse_bitand()
        while self.check(T_PUNCT, "^"):
            tok = self.advance()
            rhs = self.parse_bitand()
            expr = ast.Binary("^", expr, rhs, tok.line, tok.col)
        return expr

    def parse_bitand(self) -> ast.Expr:
        expr = self.parse_equality()
        while self.check(T_PUNCT, "&"):
            tok = self.advance()
            rhs = self.parse_equality()
            expr = ast.Binary("&", expr, rhs, tok.line, tok.col)
        return expr

    def parse_equality(self) -> ast.Expr:
        expr = self.parse_relational()
        while self.check(T_PUNCT, "==") or self.check(T_PUNCT, "!="):
            tok = self.advance()
            rhs = self.parse_relational()
            expr = ast.Binary(tok.text, expr, rhs, tok.line, tok.col)
        return expr

    def parse_relational(self) -> ast.Expr:
        expr = self.parse_shift()
        while (self.check(T_PUNCT, "<") or self.check(T_PUNCT, "<=")
               or self.check(T_PUNCT, ">") or self.check(T_PUNCT, ">=")):
            tok = self.advance()
            rhs = self.parse_shift()
            expr = ast.Binary(tok.text, expr, rhs, tok.line, tok.col)
        return expr

    def parse_shift(self) -> ast.Expr:
        expr = self.parse_additive()
        while self.check(T_PUNCT, "<<") or self.check(T_PUNCT, ">>"):
            tok = self.advance()
            rhs = self.parse_additive()
            expr = ast.Binary(tok.text, expr, rhs, tok.line, tok.col)
        return expr

    def parse_additive(self) -> ast.Expr:
        expr = self.parse_multiplicative()
        while self.check(T_PUNCT, "+") or self.check(T_PUNCT, "-"):
            tok = self.advance()
            rhs = self.parse_multiplicative()
            expr = ast.Binary(tok.text, expr, rhs, tok.line, tok.col)
        return expr

    def parse_multiplicative(self) -> ast.Expr:
        expr = self.parse_unary()
        while (self.check(T_PUNCT, "*") or self.check(T_PUNCT, "/")
               or self.check(T_PUNCT, "%")):
            tok = self.advance()
            rhs = self.parse_unary()
            expr = ast.Binary(tok.text, expr, rhs, tok.line, tok.col)
        return expr

    def parse_unary(self) -> ast.Expr:
        tok = self.peek()
        if tok.is_(T_PUNCT, "-") or tok.is_(T_PUNCT, "!"):
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(tok.text, operand, tok.line, tok.col)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            if self.check(T_PUNCT, "."):
                self.advance()
                name = self.expect(T_IDENT).text
                if self.check(T_PUNCT, "("):
                    args = self.parse_call_args()
                    expr = ast.CallExpr(expr, name, args,
                                        expr.line, expr.col)
                else:
                    expr = ast.FieldAccess(expr, name, expr.line, expr.col)
            elif self.check(T_PUNCT, "["):
                self.advance()
                idx = self.parse_expr()
                self.expect(T_PUNCT, "]")
                expr = ast.Index(expr, idx, expr.line, expr.col)
            else:
                return expr

    def parse_call_args(self):
        self.expect(T_PUNCT, "(")
        return self.parse_args_after_lparen()

    def parse_args_after_lparen(self):
        args = []
        if not self.check(T_PUNCT, ")"):
            while True:
                args.append(self.parse_expr())
                if not self.accept(T_PUNCT, ","):
                    break
        self.expect(T_PUNCT, ")")
        return args

    def parse_primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == T_INT:
            self.advance()
            return ast.IntLit(int(tok.text), tok.line, tok.col)
        if tok.kind == T_STRING:
            self.advance()
            return ast.StringLit(tok.text, tok.line, tok.col)
        if tok.kind == T_KEYWORD:
            if tok.text == "true":
                self.advance()
                return ast.BoolLit(True, tok.line, tok.col)
            if tok.text == "false":
                self.advance()
                return ast.BoolLit(False, tok.line, tok.col)
            if tok.text == "null":
                self.advance()
                return ast.NullLit(tok.line, tok.col)
            if tok.text == "this":
                self.advance()
                return ast.This(tok.line, tok.col)
            if tok.text == "new":
                return self.parse_new()
        if tok.kind == T_IDENT:
            self.advance()
            if self.check(T_PUNCT, "("):
                args = self.parse_call_args()
                return ast.CallExpr(None, tok.text, args, tok.line, tok.col)
            return ast.Name(tok.text, tok.line, tok.col)
        if tok.is_(T_PUNCT, "("):
            self.advance()
            expr = self.parse_expr()
            self.expect(T_PUNCT, ")")
            return expr
        self._error(f"unexpected token {tok.text or tok.kind!r} "
                    f"in expression")

    def parse_new(self) -> ast.Expr:
        start = self.expect(T_KEYWORD, "new")
        tok = self.peek()
        if tok.kind == T_KEYWORD and tok.text in _TYPE_KEYWORDS:
            base = self.advance().text
            return self._parse_new_array(base, start)
        name = self.expect(T_IDENT).text
        if self.check(T_PUNCT, "("):
            args = self.parse_call_args()
            return ast.New(name, args, start.line, start.col)
        if self.check(T_PUNCT, "["):
            return self._parse_new_array(name, start)
        self._error("expected '(' or '[' after new")

    def _parse_new_array(self, base: str, start) -> ast.NewArray:
        self.expect(T_PUNCT, "[")
        size = self.parse_expr()
        self.expect(T_PUNCT, "]")
        dims = 0
        while self.check(T_PUNCT, "[") and self.peek(1).is_(T_PUNCT, "]"):
            self.advance()
            self.advance()
            dims += 1
        elem = ast.TypeExpr(base, dims, start.line, start.col)
        return ast.NewArray(elem, size, start.line, start.col)


def parse(source: str) -> ast.ProgramDecl:
    """Parse MiniJ source text into an AST."""
    return Parser(source).parse_program()
