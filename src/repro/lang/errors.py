"""Compilation diagnostics for the MiniJ frontend."""

from __future__ import annotations


class SourcePosition:
    """A (line, column) pair; columns are 1-based."""

    __slots__ = ("line", "col")

    def __init__(self, line: int, col: int):
        self.line = line
        self.col = col

    def __repr__(self):
        return f"{self.line}:{self.col}"


class CompileError(Exception):
    """A frontend error with source position and phase information."""

    def __init__(self, message: str, line: int = 0, col: int = 0,
                 phase: str = "compile"):
        self.message = message
        self.line = line
        self.col = col
        self.phase = phase
        super().__init__(self.render())

    def render(self) -> str:
        where = f" at {self.line}:{self.col}" if self.line else ""
        return f"{self.phase} error{where}: {self.message}"


class LexError(CompileError):
    def __init__(self, message: str, line: int = 0, col: int = 0):
        super().__init__(message, line, col, phase="lex")


class ParseError(CompileError):
    def __init__(self, message: str, line: int = 0, col: int = 0):
        super().__init__(message, line, col, phase="parse")


class TypeError_(CompileError):
    """Named with a trailing underscore to avoid clashing with builtins."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        super().__init__(message, line, col, phase="type")
