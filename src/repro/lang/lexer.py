"""Hand-written lexer for MiniJ.

Supports ``//`` line comments, ``/* ... */`` block comments, decimal
integer literals, double-quoted string literals with the usual escape
sequences, identifiers, keywords, and punctuation.
"""

from __future__ import annotations

from .errors import LexError
from .tokens import (KEYWORDS, PUNCT_1, PUNCT_2PLUS, T_EOF, T_IDENT, T_INT,
                     T_KEYWORD, T_PUNCT, T_STRING, Token)

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    '"': '"',
    "\\": "\\",
    "'": "'",
}


def tokenize(source: str) -> list:
    """Lex ``source`` into a list of tokens ending with an EOF token."""
    tokens = []
    pos = 0
    line = 1
    col = 1
    n = len(source)

    def error(message: str):
        raise LexError(message, line, col)

    while pos < n:
        ch = source[pos]

        # Whitespace.
        if ch == "\n":
            pos += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            pos += 1
            col += 1
            continue

        # Comments.
        if ch == "/" and pos + 1 < n:
            nxt = source[pos + 1]
            if nxt == "/":
                while pos < n and source[pos] != "\n":
                    pos += 1
                continue
            if nxt == "*":
                start_line, start_col = line, col
                pos += 2
                col += 2
                while pos < n:
                    if source[pos] == "*" and pos + 1 < n \
                            and source[pos + 1] == "/":
                        pos += 2
                        col += 2
                        break
                    if source[pos] == "\n":
                        line += 1
                        col = 1
                    else:
                        col += 1
                    pos += 1
                else:
                    raise LexError("unterminated block comment",
                                   start_line, start_col)
                continue

        # Identifiers and keywords.
        if ch.isalpha() or ch == "_":
            start = pos
            start_col = col
            while pos < n and (source[pos].isalnum() or source[pos] == "_"):
                pos += 1
                col += 1
            text = source[start:pos]
            kind = T_KEYWORD if text in KEYWORDS else T_IDENT
            tokens.append(Token(kind, text, line, start_col))
            continue

        # Integer literals.
        if ch.isdigit():
            start = pos
            start_col = col
            while pos < n and source[pos].isdigit():
                pos += 1
                col += 1
            if pos < n and (source[pos].isalpha() or source[pos] == "_"):
                error(f"malformed number near {source[start:pos + 1]!r}")
            tokens.append(Token(T_INT, source[start:pos], line, start_col))
            continue

        # String literals.
        if ch == '"':
            start_line, start_col = line, col
            pos += 1
            col += 1
            chunks = []
            while True:
                if pos >= n:
                    raise LexError("unterminated string literal",
                                   start_line, start_col)
                c = source[pos]
                if c == '"':
                    pos += 1
                    col += 1
                    break
                if c == "\n":
                    raise LexError("newline in string literal",
                                   start_line, start_col)
                if c == "\\":
                    if pos + 1 >= n:
                        raise LexError("dangling escape in string literal",
                                       line, col)
                    esc = source[pos + 1]
                    if esc not in _ESCAPES:
                        raise LexError(f"unknown escape \\{esc}", line, col)
                    chunks.append(_ESCAPES[esc])
                    pos += 2
                    col += 2
                    continue
                chunks.append(c)
                pos += 1
                col += 1
            tokens.append(Token(T_STRING, "".join(chunks), start_line,
                                start_col))
            continue

        # Punctuation, longest match first.
        two = source[pos:pos + 2]
        if two in PUNCT_2PLUS:
            tokens.append(Token(T_PUNCT, two, line, col))
            pos += 2
            col += 2
            continue
        if ch in PUNCT_1:
            tokens.append(Token(T_PUNCT, ch, line, col))
            pos += 1
            col += 1
            continue

        error(f"unexpected character {ch!r}")

    tokens.append(Token(T_EOF, "", line, col))
    return tokens
