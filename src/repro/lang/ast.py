"""Abstract syntax tree for MiniJ.

Nodes carry source positions for diagnostics.  The type checker
annotates expression nodes in place (``.type`` and resolution fields
consumed by the code generator); those fields default to ``None`` here.
"""

from __future__ import annotations


class Node:
    __slots__ = ("line", "col")

    def __init__(self, line: int = 0, col: int = 0):
        self.line = line
        self.col = col


# ---------------------------------------------------------------------------
# Type expressions (syntactic; resolved to repro.ir types by the checker)
# ---------------------------------------------------------------------------

class TypeExpr(Node):
    """``int``, ``bool``, ``string``, ``void``, a class name, or arrays."""

    __slots__ = ("base", "dims")

    def __init__(self, base: str, dims: int = 0, line: int = 0, col: int = 0):
        super().__init__(line, col)
        self.base = base
        self.dims = dims

    def __repr__(self):
        return self.base + "[]" * self.dims


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------

class ProgramDecl(Node):
    __slots__ = ("classes",)

    def __init__(self, classes, line: int = 0, col: int = 0):
        super().__init__(line, col)
        self.classes = classes


class ClassDecl(Node):
    __slots__ = ("name", "super_name", "fields", "methods", "constructors")

    def __init__(self, name, super_name, fields, methods, constructors,
                 line: int = 0, col: int = 0):
        super().__init__(line, col)
        self.name = name
        self.super_name = super_name
        self.fields = fields
        self.methods = methods
        self.constructors = constructors


class FieldDecl(Node):
    __slots__ = ("type_expr", "name", "is_static")

    def __init__(self, type_expr, name, is_static, line: int = 0,
                 col: int = 0):
        super().__init__(line, col)
        self.type_expr = type_expr
        self.name = name
        self.is_static = is_static


class MethodDecl(Node):
    __slots__ = ("return_type", "name", "params", "body", "is_static",
                 "is_constructor")

    def __init__(self, return_type, name, params, body, is_static,
                 is_constructor=False, line: int = 0, col: int = 0):
        super().__init__(line, col)
        self.return_type = return_type
        self.name = name
        self.params = params          # [(TypeExpr, name)]
        self.body = body              # Block
        self.is_static = is_static
        self.is_constructor = is_constructor


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Stmt(Node):
    __slots__ = ()


class Block(Stmt):
    __slots__ = ("stmts",)

    def __init__(self, stmts, line: int = 0, col: int = 0):
        super().__init__(line, col)
        self.stmts = stmts


class VarDecl(Stmt):
    __slots__ = ("type_expr", "name", "init", "reg")

    def __init__(self, type_expr, name, init, line: int = 0, col: int = 0):
        super().__init__(line, col)
        self.type_expr = type_expr
        self.name = name
        self.init = init
        self.reg = None  # unique register name, set by the checker


class Assign(Stmt):
    """``target op= value`` where op is '' for plain assignment."""

    __slots__ = ("target", "op", "value")

    def __init__(self, target, op, value, line: int = 0, col: int = 0):
        super().__init__(line, col)
        self.target = target
        self.op = op
        self.value = value


class IncDec(Stmt):
    """``target++`` / ``target--`` used as a statement."""

    __slots__ = ("target", "delta")

    def __init__(self, target, delta, line: int = 0, col: int = 0):
        super().__init__(line, col)
        self.target = target
        self.delta = delta  # +1 or -1


class If(Stmt):
    __slots__ = ("cond", "then_stmt", "else_stmt")

    def __init__(self, cond, then_stmt, else_stmt, line: int = 0,
                 col: int = 0):
        super().__init__(line, col)
        self.cond = cond
        self.then_stmt = then_stmt
        self.else_stmt = else_stmt


class While(Stmt):
    __slots__ = ("cond", "body")

    def __init__(self, cond, body, line: int = 0, col: int = 0):
        super().__init__(line, col)
        self.cond = cond
        self.body = body


class For(Stmt):
    __slots__ = ("init", "cond", "update", "body")

    def __init__(self, init, cond, update, body, line: int = 0, col: int = 0):
        super().__init__(line, col)
        self.init = init        # VarDecl | Assign | IncDec | None
        self.cond = cond        # Expr | None (None = true)
        self.update = update    # Assign | IncDec | ExprStmt | None
        self.body = body


class Return(Stmt):
    __slots__ = ("value",)

    def __init__(self, value, line: int = 0, col: int = 0):
        super().__init__(line, col)
        self.value = value


class Break(Stmt):
    __slots__ = ()


class Continue(Stmt):
    __slots__ = ()


class ExprStmt(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr, line: int = 0, col: int = 0):
        super().__init__(line, col)
        self.expr = expr


class SuperCall(Stmt):
    """``super(args);`` — explicit superclass constructor invocation."""

    __slots__ = ("args", "resolved_class")

    def __init__(self, args, line: int = 0, col: int = 0):
        super().__init__(line, col)
        self.args = args
        self.resolved_class = None  # superclass name, set by the checker


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr(Node):
    __slots__ = ("type",)

    def __init__(self, line: int = 0, col: int = 0):
        super().__init__(line, col)
        self.type = None  # repro.ir type, set by the checker


class IntLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value, line: int = 0, col: int = 0):
        super().__init__(line, col)
        self.value = value


class BoolLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value, line: int = 0, col: int = 0):
        super().__init__(line, col)
        self.value = value


class StringLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value, line: int = 0, col: int = 0):
        super().__init__(line, col)
        self.value = value


class NullLit(Expr):
    __slots__ = ()


class This(Expr):
    __slots__ = ()


class Name(Expr):
    """An identifier: local, parameter, field, or class reference.

    The checker sets ``binding`` to one of:

    * ``("local", register_name)``
    * ``("field", FieldDef)`` — implicit ``this`` access
    * ``("static", FieldDef)``
    * ``("class", class_name)`` — only legal as a qualifier
    """

    __slots__ = ("ident", "binding")

    def __init__(self, ident, line: int = 0, col: int = 0):
        super().__init__(line, col)
        self.ident = ident
        self.binding = None


class FieldAccess(Expr):
    """``expr.name`` — instance field, static field, or array ``length``.

    ``kind`` (set by the checker) is one of ``"field"``, ``"static"``,
    ``"arraylen"``.
    """

    __slots__ = ("obj", "name", "kind", "field_def")

    def __init__(self, obj, name, line: int = 0, col: int = 0):
        super().__init__(line, col)
        self.obj = obj
        self.name = name
        self.kind = None
        self.field_def = None


class Index(Expr):
    __slots__ = ("arr", "idx")

    def __init__(self, arr, idx, line: int = 0, col: int = 0):
        super().__init__(line, col)
        self.arr = arr
        self.idx = idx


class CallExpr(Expr):
    """Any call: ``m(...)``, ``expr.m(...)``, ``Class.m(...)``.

    The checker sets ``kind`` to one of ``"virtual"``, ``"static"``,
    ``"native"``, ``"intrinsic"`` and fills the matching resolution
    fields.
    """

    __slots__ = ("recv", "method", "args", "kind", "target_class",
                 "target_method", "native", "intrinsic", "extra_args")

    def __init__(self, recv, method, args, line: int = 0, col: int = 0):
        super().__init__(line, col)
        self.recv = recv          # Expr | None (unqualified / static)
        self.method = method
        self.args = args
        self.kind = None
        self.target_class = None
        self.target_method = None  # MethodDecl signature info
        self.native = None
        self.intrinsic = None
        self.extra_args = None


class New(Expr):
    __slots__ = ("class_name", "args", "ctor_class")

    def __init__(self, class_name, args, line: int = 0, col: int = 0):
        super().__init__(line, col)
        self.class_name = class_name
        self.args = args
        self.ctor_class = None  # set by checker when a ctor must be called


class NewArray(Expr):
    __slots__ = ("elem_type_expr", "size")

    def __init__(self, elem_type_expr, size, line: int = 0, col: int = 0):
        super().__init__(line, col)
        self.elem_type_expr = elem_type_expr
        self.size = size


class Unary(Expr):
    __slots__ = ("op", "operand")

    def __init__(self, op, operand, line: int = 0, col: int = 0):
        super().__init__(line, col)
        self.op = op
        self.operand = operand


class Binary(Expr):
    """Binary expression; the checker may set ``lowered`` hints.

    ``lowered`` is one of None (plain numeric/bool op), ``"concat"``,
    ``"seq"`` / ``"sne"`` (string equality), ``"and"`` / ``"or"``
    (short-circuit).
    """

    __slots__ = ("op", "lhs", "rhs", "lowered")

    def __init__(self, op, lhs, rhs, line: int = 0, col: int = 0):
        super().__init__(line, col)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs
        self.lowered = None
