"""MiniJ source formatter: renders an AST back to compilable source.

Useful for tooling (dumping generated/parsed programs) and as a test
oracle: ``format(parse(format(parse(src))))`` must be a fixpoint, and a
formatted program must behave identically to the original.
"""

from __future__ import annotations

from . import ast

_INDENT = "    "

#: Binary operator precedence (higher binds tighter); mirrors the
#: parser's grammar levels.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ESCAPES = {
    "\n": "\\n",
    "\t": "\\t",
    "\r": "\\r",
    "\0": "\\0",
    '"': '\\"',
    "\\": "\\\\",
}


def _escape(text: str) -> str:
    return "".join(_ESCAPES.get(ch, ch) for ch in text)


def format_type(type_expr: ast.TypeExpr) -> str:
    return type_expr.base + "[]" * type_expr.dims


def format_expr(expr: ast.Expr, parent_prec: int = 0) -> str:
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.StringLit):
        return f'"{_escape(expr.value)}"'
    if isinstance(expr, ast.NullLit):
        return "null"
    if isinstance(expr, ast.This):
        return "this"
    if isinstance(expr, ast.Name):
        return expr.ident
    if isinstance(expr, ast.FieldAccess):
        return f"{format_expr(expr.obj, 99)}.{expr.name}"
    if isinstance(expr, ast.Index):
        return f"{format_expr(expr.arr, 99)}[{format_expr(expr.idx)}]"
    if isinstance(expr, ast.CallExpr):
        args = ", ".join(format_expr(a) for a in expr.args)
        if expr.recv is None:
            return f"{expr.method}({args})"
        return f"{format_expr(expr.recv, 99)}.{expr.method}({args})"
    if isinstance(expr, ast.New):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"new {expr.class_name}({args})"
    if isinstance(expr, ast.NewArray):
        elem = expr.elem_type_expr
        return (f"new {elem.base}[{format_expr(expr.size)}]"
                + "[]" * elem.dims)
    if isinstance(expr, ast.Unary):
        operand = format_expr(expr.operand, 11)
        # '- -x' must not collapse into the '--' token.
        spacer = " " if expr.op == "-" and operand.startswith("-") \
            else ""
        return f"{expr.op}{spacer}{operand}"
    if isinstance(expr, ast.Binary):
        prec = _PRECEDENCE[expr.op]
        lhs = format_expr(expr.lhs, prec - 1)     # left associative
        rhs = format_expr(expr.rhs, prec)
        text = f"{lhs} {expr.op} {rhs}"
        if prec <= parent_prec:
            return f"({text})"
        return text
    raise TypeError(f"cannot format {type(expr).__name__}")


def _format_simple_stmt(stmt) -> str:
    """Assignment / inc-dec / call without the trailing semicolon."""
    if isinstance(stmt, ast.Assign):
        return (f"{format_expr(stmt.target)} {stmt.op}= "
                f"{format_expr(stmt.value)}")
    if isinstance(stmt, ast.IncDec):
        suffix = "++" if stmt.delta > 0 else "--"
        return f"{format_expr(stmt.target)}{suffix}"
    if isinstance(stmt, ast.ExprStmt):
        return format_expr(stmt.expr)
    if isinstance(stmt, ast.VarDecl):
        text = f"{format_type(stmt.type_expr)} {stmt.name}"
        if stmt.init is not None:
            text += f" = {format_expr(stmt.init)}"
        return text
    raise TypeError(f"cannot format {type(stmt).__name__} inline")


def format_stmt(stmt: ast.Stmt, indent: int = 0) -> str:
    pad = _INDENT * indent
    if isinstance(stmt, ast.Block):
        if not stmt.stmts:
            return pad + "{ }"
        lines = [pad + "{"]
        lines += [format_stmt(s, indent + 1) for s in stmt.stmts]
        lines.append(pad + "}")
        return "\n".join(lines)
    if isinstance(stmt, (ast.VarDecl, ast.Assign, ast.IncDec,
                         ast.ExprStmt)):
        return pad + _format_simple_stmt(stmt) + ";"
    if isinstance(stmt, ast.If):
        text = (pad + f"if ({format_expr(stmt.cond)})\n"
                + _format_substmt(stmt.then_stmt, indent))
        if stmt.else_stmt is not None:
            text += ("\n" + pad + "else\n"
                     + _format_substmt(stmt.else_stmt, indent))
        return text
    if isinstance(stmt, ast.While):
        return (pad + f"while ({format_expr(stmt.cond)})\n"
                + _format_substmt(stmt.body, indent))
    if isinstance(stmt, ast.For):
        init = _format_simple_stmt(stmt.init) if stmt.init else ""
        cond = format_expr(stmt.cond) if stmt.cond else ""
        update = _format_simple_stmt(stmt.update) if stmt.update else ""
        return (pad + f"for ({init}; {cond}; {update})\n"
                + _format_substmt(stmt.body, indent))
    if isinstance(stmt, ast.Return):
        if stmt.value is None:
            return pad + "return;"
        return pad + f"return {format_expr(stmt.value)};"
    if isinstance(stmt, ast.Break):
        return pad + "break;"
    if isinstance(stmt, ast.Continue):
        return pad + "continue;"
    if isinstance(stmt, ast.SuperCall):
        args = ", ".join(format_expr(a) for a in stmt.args)
        return pad + f"super({args});"
    raise TypeError(f"cannot format {type(stmt).__name__}")


def _format_substmt(stmt, indent: int) -> str:
    """A statement in if/while/for position; blocks stay at the parent
    indent, single statements get one more level."""
    if isinstance(stmt, ast.Block):
        return format_stmt(stmt, indent)
    return format_stmt(stmt, indent + 1)


def format_method(method: ast.MethodDecl, indent: int = 1) -> str:
    pad = _INDENT * indent
    params = ", ".join(f"{format_type(t)} {name}"
                       for t, name in method.params)
    static = "static " if method.is_static else ""
    if method.is_constructor:
        header = f"{pad}__CTOR__({params})"
    else:
        header = (f"{pad}{static}{format_type(method.return_type)} "
                  f"{method.name}({params})")
    return header + "\n" + format_stmt(method.body, indent)


def format_class(decl: ast.ClassDecl) -> str:
    header = f"class {decl.name}"
    if decl.super_name is not None:
        header += f" extends {decl.super_name}"
    lines = [header + " {"]
    for field in decl.fields:
        static = "static " if field.is_static else ""
        lines.append(f"{_INDENT}{static}{format_type(field.type_expr)} "
                     f"{field.name};")
    for ctor in decl.constructors:
        lines.append(format_method(ctor).replace("__CTOR__", decl.name))
    for method in decl.methods:
        lines.append(format_method(method))
    lines.append("}")
    return "\n".join(lines)


def format_program_decl(program: ast.ProgramDecl) -> str:
    return "\n\n".join(format_class(c) for c in program.classes) + "\n"


def format_source(source: str) -> str:
    """Parse and re-render MiniJ source (a canonical formatter)."""
    from .parser import parse
    return format_program_decl(parse(source))
