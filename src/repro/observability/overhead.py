"""Self-profiling: tracker overhead as a ratio of untracked execution.

Table 1 of the paper reports the instrumentation overhead of running
each DaCapo benchmark under the J9 tracking JVM next to the analysis
results; the overhead column is what told users whether always-on
profiling was affordable and when to reach for phase-restricted
tracking (§4.1).  This module is the reproduction's analogue: it runs
the same program once on the bare interpreter and once under the
:class:`~repro.profiler.tracker.CostTracker` and reports the wall-time
ratio, plus the graph the tracked run paid for.

Exposed on the CLI as ``repro profile FILE --self-profile`` (the
resulting summary travels inside the saved profile's ``meta`` so
``repro report`` can render it offline).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .telemetry import current


@dataclass
class OverheadReport:
    """Tracked-vs-untracked cost of one profiled program."""

    untracked_wall: float      # seconds, bare VM
    tracked_wall: float        # seconds, VM + CostTracker
    instructions: int = 0      # per untracked run
    nodes: int = 0             # Gcost size bought by the overhead
    edges: int = 0
    repeats: int = 1           # measurements per mode (min is kept)

    @property
    def overhead(self) -> float:
        """Tracked / untracked wall ratio (the Table-1 analogue)."""
        if self.untracked_wall <= 0:
            return float("inf") if self.tracked_wall > 0 else 1.0
        return self.tracked_wall / self.untracked_wall

    def as_dict(self) -> dict:
        """JSON-ready form (stored under profile ``meta["overhead"]``)."""
        return {"untracked_wall_s": round(self.untracked_wall, 6),
                "tracked_wall_s": round(self.tracked_wall, 6),
                "overhead": round(self.overhead, 3),
                "instructions": self.instructions,
                "nodes": self.nodes, "edges": self.edges,
                "repeats": self.repeats}

    def format(self) -> str:
        return (f"tracker overhead: {self.overhead:.1f}x "
                f"(tracked {self.tracked_wall:.3f}s vs untracked "
                f"{self.untracked_wall:.3f}s over "
                f"{self.instructions} instructions; graph "
                f"{self.nodes} nodes / {self.edges} edges)")


def overhead_from_dict(data: dict) -> OverheadReport:
    """Rebuild a report from :meth:`OverheadReport.as_dict` output."""
    return OverheadReport(
        untracked_wall=data.get("untracked_wall_s", 0.0),
        tracked_wall=data.get("tracked_wall_s", 0.0),
        instructions=data.get("instructions", 0),
        nodes=data.get("nodes", 0), edges=data.get("edges", 0),
        repeats=data.get("repeats", 1))


def time_untracked(program, max_steps: int = 2_000_000_000,
                   repeats: int = 1) -> float:
    """Minimum wall time of ``repeats`` bare (tracer-less) runs."""
    from ..vm import VM
    best = None
    for _ in range(max(repeats, 1)):
        vm = VM(program, max_steps=max_steps)
        start = time.perf_counter()
        vm.run()
        wall = time.perf_counter() - start
        if best is None or wall < best:
            best = wall
    return best


def measure_overhead(program, slots: int = 16, phases=None,
                     max_steps: int = 2_000_000_000,
                     repeats: int = 1,
                     telemetry=None) -> OverheadReport:
    """Run ``program`` untracked and tracked; report the overhead ratio.

    Each mode runs ``repeats`` times on a fresh VM (and a fresh
    :class:`CostTracker` for the tracked mode) and keeps the minimum
    wall — the standard noise-robust estimate for short deterministic
    runs.  Emits an ``overhead`` telemetry event on the active (or
    given) hub.
    """
    from ..profiler import CostTracker
    from ..vm import VM
    hub = telemetry if telemetry is not None else current()

    untracked_wall = None
    instructions = 0
    for _ in range(max(repeats, 1)):
        vm = VM(program, max_steps=max_steps)
        start = time.perf_counter()
        vm.run()
        wall = time.perf_counter() - start
        if untracked_wall is None or wall < untracked_wall:
            untracked_wall = wall
        instructions = vm.instr_count

    tracked_wall = None
    graph = None
    for _ in range(max(repeats, 1)):
        tracker = CostTracker(slots=slots, phases=phases)
        vm = VM(program, tracer=tracker, max_steps=max_steps)
        start = time.perf_counter()
        vm.run()
        wall = time.perf_counter() - start
        if tracked_wall is None or wall < tracked_wall:
            tracked_wall = wall
        graph = tracker.graph

    report = OverheadReport(untracked_wall=untracked_wall,
                            tracked_wall=tracked_wall,
                            instructions=instructions,
                            nodes=graph.num_nodes,
                            edges=graph.num_edges,
                            repeats=max(repeats, 1))
    if hub.enabled:
        hub.event("overhead", **report.as_dict())
    return report
