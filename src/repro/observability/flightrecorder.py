"""Always-on flight recorder: a bounded ring of recent telemetry events.

Offline telemetry answers "what happened?" only when ``--telemetry``
was enabled *before* the incident.  The flight recorder closes that
gap the way "Dynamic Slicing by On-demand Re-execution" recovers
detail after the fact: keep only a cheap bounded record at runtime —
a :class:`collections.deque` ring of the most recent schema-v2 events,
**no I/O on the hot path** — and materialize it as a JSONL file only
when something goes wrong (a :class:`~repro.vm.errors.VMError`, a
crashed or fault-killed worker attempt, ``SIGUSR1``, daemon shutdown).

The dump is a valid telemetry stream: each hub's leading ``meta``
event is *pinned* outside the ring (a long run would otherwise rotate
it out, orphaning the trace/clock context), so ``python -m repro
trace flight.jsonl`` renders a dump with the ordinary trace reader.
Dumps are written atomically (tmp + ``os.replace``) — a crash during
the dump itself can never leave a half-written file in place.

Wiring (see ``docs/OBSERVABILITY.md``): ``repro profile`` and ``repro
serve`` install a recorder by default (``--flight-record PATH`` to
move it, ``--no-flight-record`` to opt out).  With ``--telemetry``
the recorder taps the JSONL sink via :class:`RecorderSink`; without
it, a hub is created whose *only* sink is the ring, which is what
makes the recorder "always on" — worker-process events relayed
through the supervisor's result pipe land in the ring too, so a
killed worker's last spans survive in the dump.
"""

from __future__ import annotations

import json
import os
import signal
import threading
from collections import deque

#: Events retained in the ring (per recorder).
DEFAULT_CAPACITY = 4096

#: Default dump file, relative to the working directory.
DEFAULT_DUMP_PATH = "repro-flight.jsonl"


class FlightRecorder:
    """A bounded in-memory ring of telemetry events, dumpable on demand.

    ``record`` is the hot path: one deque append (O(1), drops the
    oldest event beyond ``capacity``) plus a dict insert for ``meta``
    events.  Nothing touches the filesystem until :meth:`dump`.
    """

    def __init__(self, path: str = DEFAULT_DUMP_PATH,
                 capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.path = path
        self.capacity = capacity
        self._ring = deque(maxlen=capacity)
        #: hub id -> that hub's ``meta`` event, pinned so a dump always
        #: carries the clock/trace context the trace reader needs.
        self._meta = {}
        self.recorded = 0
        self.dropped = 0
        self.dumps = 0

    def record(self, event: dict) -> None:
        if event.get("ev") == "meta":
            self._meta[event.get("hub", "")] = event
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(event)
        self.recorded += 1

    def __len__(self) -> int:
        return len(self._ring)

    def dump(self, reason: str, path: str = None) -> str:
        """Write the ring to ``path`` (default: the configured path)
        atomically; returns the path written.

        The pinned ``meta`` events lead the file (skipping any still
        present in the ring), followed by the ring in arrival order
        and a trailing ``flight.dump`` marker recording why and how
        much was dropped.
        """
        target = path or self.path
        ring = list(self._ring)
        ring_ids = {id(event) for event in ring}
        lines = [event for _hub, event in sorted(self._meta.items())
                 if id(event) not in ring_ids]
        lines.extend(ring)
        marker = {"ev": "flight.dump", "t": 0.0, "pid": os.getpid(),
                  "hub": "flight", "reason": reason,
                  "events": len(lines), "recorded": self.recorded,
                  "dropped": self.dropped, "capacity": self.capacity}
        tmp = f"{target}.tmp"
        with open(tmp, "w") as handle:
            for event in lines:
                handle.write(json.dumps(event, sort_keys=True))
                handle.write("\n")
            handle.write(json.dumps(marker, sort_keys=True))
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
        self.dumps += 1
        return target


class RecorderSink:
    """A telemetry sink that records into a ring and forwards.

    With ``inner`` (e.g. the ``--telemetry`` :class:`JsonlSink`) every
    event goes both to the ring and onward; without it the ring is the
    only destination — the always-on configuration, which costs no I/O.
    """

    def __init__(self, recorder: FlightRecorder, inner=None):
        self.recorder = recorder
        self.inner = inner

    def emit(self, event: dict) -> None:
        self.recorder.record(event)
        if self.inner is not None:
            self.inner.emit(event)

    def close(self) -> None:
        if self.inner is not None:
            self.inner.close()


# -- the process-wide recorder ------------------------------------------------

_installed = None
_lock = threading.Lock()


def install(recorder: FlightRecorder):
    """Make ``recorder`` the process-wide recorder; returns the
    previous one (or None)."""
    global _installed
    with _lock:
        previous = _installed
        _installed = recorder
    return previous


def current_recorder():
    """The process-wide recorder, or None when none is installed."""
    return _installed


def dump_current(reason: str):
    """Dump the installed recorder, if any; returns the path written
    or None.  Never raises: a failed postmortem write must not mask
    the fault being recorded."""
    recorder = _installed
    if recorder is None:
        return None
    try:
        return recorder.dump(reason)
    except OSError:
        return None


def arm_signal(signum=getattr(signal, "SIGUSR1", None),
               reason: str = "sigusr1") -> bool:
    """Dump the installed recorder when ``signum`` arrives.

    Returns True when the handler was installed (main thread of a
    platform that has the signal), False otherwise.
    """
    if signum is None:
        return False

    def _handler(_signum, _frame):
        dump_current(reason)

    try:
        signal.signal(signum, _handler)
    except (ValueError, OSError):  # not the main thread / unsupported
        return False
    return True
