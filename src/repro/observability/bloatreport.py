"""Markdown bloat report: the run → profile → report pipeline's tail.

§3.2 notes the analyses "could be easily migrated to an offline heap
analysis tool"; PR 2 made profiles travel (format v2 carries the
tracker state), and this module turns a saved profile into the
document a developer acts on — without touching the Python API:

.. code-block:: text

    python -m repro profile prog.mj --save-graph g.json --self-profile
    python -m repro report g.json prog.mj -o bloat.md

Sections: run summary (graph size, CR), the top cost-benefit
offenders (§3.1's ranking), the HRAC / HRAB field tables
(Definitions 5-6), dead-value metrics (Table 1c), and the tracker
overhead summary when the profile was taken with ``--self-profile``.
All analysis answers come from the batched slicing engine
(:func:`repro.analyses.batch.engine_for`), so the report renders in
one pass even on merged multi-shard graphs.
"""

from __future__ import annotations


def _md(value, digits: int = 1) -> str:
    """Markdown cell rendering with the paper's ``inf`` convention."""
    if value is None:
        return "—"
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        return f"{value:.{digits}f}"
    return str(value)


def _table(headers, rows) -> str:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def _site_names(program):
    from ..analyses.costbenefit import _site_descriptions
    return _site_descriptions(program)


def _field_rows(field_map, descriptions, top, reverse=True):
    """Rows for a HRAC/HRAB table from a ``(alloc_key, field) -> value``
    map, aggregated over context slots per ``(site, field)``."""
    inf = float("inf")
    merged = {}
    for (alloc_key, field), value in field_map.items():
        key = (alloc_key[0], field)
        entry = merged.get(key)
        if entry is None:
            merged[key] = [value, 1]
        else:
            if value == inf or entry[0] == inf:
                entry[0] = inf
            else:
                entry[0] += value
            entry[1] += 1
    ranked = sorted(merged.items(),
                    key=lambda item: (item[1][0] == inf, item[1][0]),
                    reverse=reverse)
    rows = []
    for (iid, field), (value, contexts) in ranked[:top]:
        what, method, line = descriptions.get(iid, ("?", "?", 0))
        rows.append((f"`{what}.{field}`", f"{method} (line {line})",
                     contexts, _md(value)))
    return rows


def _field_data(field_map, descriptions, top, reverse=True):
    """JSON rows for a HRAC/HRAB section (same aggregation as
    :func:`_field_rows`, machine-readable values)."""
    inf = float("inf")
    merged = {}
    for (alloc_key, field), value in field_map.items():
        key = (alloc_key[0], field)
        entry = merged.get(key)
        if entry is None:
            merged[key] = [value, 1]
        else:
            if value == inf or entry[0] == inf:
                entry[0] = inf
            else:
                entry[0] += value
            entry[1] += 1
    ranked = sorted(merged.items(),
                    key=lambda item: (item[1][0] == inf, item[1][0]),
                    reverse=reverse)
    rows = []
    for (iid, field), (value, contexts) in ranked[:top]:
        what, method, line = descriptions.get(iid, ("?", "?", 0))
        rows.append({"field": f"{what}.{field}", "method": method,
                     "line": line, "contexts": contexts,
                     "value": "inf" if value == inf else round(value, 4)})
    return rows


def bloat_report_data(graph, meta, state, program, top: int = 10) -> dict:
    """The bloat report as a machine-readable dict (``report --format
    json``).

    Mirrors :func:`render_bloat_report` section by section — run
    summary, cost-benefit ranking, HRAC/HRAB field tables, dead-value
    metrics, tracker overhead — with raw numbers instead of Markdown
    cells (``inf`` is serialized as the string ``"inf"`` since JSON
    has no infinity literal).
    """
    from ..analyses import analyze_cost_benefit, measure_bloat
    from ..analyses.batch import engine_for

    def _num(value, digits=4):
        if value is None:
            return None
        if isinstance(value, float):
            if value == float("inf"):
                return "inf"
            return round(value, digits)
        return value

    descriptions = _site_names(program)
    engine = engine_for(graph)
    instructions = meta.get("instructions", 0)

    data = {
        "summary": {
            "label": meta.get("label", ""),
            "instructions": instructions or None,
            "slots": graph.slots,
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "ref_edges": len(graph.ref_edges),
            "memory_bytes": graph.memory_bytes(),
            "conflict_ratio": (round(state.conflict_ratio(graph), 6)
                               if state is not None else None),
            "runs": meta.get("runs"),
        },
        "cost_benefit": [
            {"rank": rank, "site": report.what, "method": report.method,
             "line": report.line, "n_rac": _num(report.n_rac),
             "n_rab": _num(report.n_rab), "ratio": _num(report.ratio),
             "contexts": report.contexts}
            for rank, report in enumerate(
                analyze_cost_benefit(graph, program)[:top], start=1)],
        "hrac": _field_data(engine.field_racs(), descriptions, top),
        "hrab": _field_data(engine.field_rabs(), descriptions, top,
                            reverse=False),
    }
    if instructions:
        metrics = measure_bloat(graph, instructions)
        data["dead_values"] = {"ipd": round(metrics.ipd, 6),
                               "ipp": round(metrics.ipp, 6),
                               "nld": round(metrics.nld, 6)}
    else:
        data["dead_values"] = None
    overhead = meta.get("overhead")
    data["overhead"] = dict(overhead) if overhead else None
    if meta.get("trace"):
        data["trace"] = dict(meta["trace"])
    return data


def render_bloat_report(graph, meta, state, program, top: int = 10) -> str:
    """Render the full Markdown bloat report for one saved profile.

    ``graph``/``meta``/``state`` are exactly what
    :func:`repro.profiler.load_profile` returns; ``state`` may be
    ``None`` for v1 (graph-only) profiles — the CR line then says so
    instead of failing.
    """
    from ..analyses import (analyze_cost_benefit, measure_bloat)
    from ..analyses.batch import engine_for
    from .overhead import overhead_from_dict

    descriptions = _site_names(program)
    engine = engine_for(graph)
    instructions = meta.get("instructions", 0)

    out = ["# Bloat report", ""]
    if meta.get("label"):
        out.append(f"Profile `{meta['label']}`")
        out.append("")
    if meta.get("output") is not None:
        out.append(f"Program output: `{meta['output'].strip() or '(none)'}`")
        out.append("")

    # -- run summary ---------------------------------------------------------
    out.append("## Run summary")
    out.append("")
    cr = (f"{state.conflict_ratio(graph):.3f}" if state is not None
          else "n/a (v1 profile — re-profile to capture tracker state)")
    summary_rows = [
        ("instructions executed", instructions or "n/a"),
        ("context slots (s)", graph.slots),
        ("Gcost nodes", graph.num_nodes),
        ("Gcost edges", graph.num_edges),
        ("reference edges", len(graph.ref_edges)),
        ("graph memory (approx.)", f"{graph.memory_bytes() / 1024:.1f} KiB"),
        ("context conflict ratio (CR)", cr),
    ]
    if meta.get("runs"):
        summary_rows.insert(1, ("aggregated runs", meta["runs"]))
    out.append(_table(("metric", "value"), summary_rows))
    out.append("")

    # -- cost-benefit ranking ------------------------------------------------
    out.append("## Top cost-benefit offenders")
    out.append("")
    reports = analyze_cost_benefit(graph, program)
    if reports:
        rows = []
        for rank, report in enumerate(reports[:top], start=1):
            rows.append((rank, f"`{report.what}`",
                         f"{report.method} (line {report.line})",
                         _md(report.n_rac), _md(report.n_rab),
                         _md(report.ratio), report.contexts))
        out.append(_table(("#", "site", "where", "n-RAC", "n-RAB",
                           "C/B", "contexts"), rows))
        out.append("")
        out.append("High C/B means expensive to build relative to the "
                   "benefit its consumers ever extract (C/B `inf` = no "
                   "benefit at all; n-RAB `inf` = the structure reaches "
                   "program output, so its benefit is unbounded).")
    else:
        out.append("*(no data-structure activity observed)*")
    out.append("")

    # -- HRAC / HRAB field tables --------------------------------------------
    out.append("## Costliest fields (HRAC, Definition 5)")
    out.append("")
    racs = engine.field_racs()
    if racs:
        out.append(_table(("field", "written in", "contexts", "RAC"),
                          _field_rows(racs, descriptions, top)))
    else:
        out.append("*(no tracked field stores)*")
    out.append("")

    out.append("## Least-beneficial fields (HRAB, Definition 6)")
    out.append("")
    rabs = engine.field_rabs()
    if rabs:
        out.append(_table(("field", "written in", "contexts", "RAB"),
                          _field_rows(rabs, descriptions, top,
                                      reverse=False)))
        out.append("")
        out.append("RAB 0 fields are pure cost; `inf` fields reach "
                   "program output and are untouchable.")
    else:
        out.append("*(no tracked field loads)*")
    out.append("")

    # -- dead-value metrics --------------------------------------------------
    out.append("## Dead-value metrics (Table 1c analogues)")
    out.append("")
    if instructions:
        metrics = measure_bloat(graph, instructions)
        out.append(_table(
            ("metric", "value", "meaning"),
            [("IPD", f"{metrics.ipd * 100:.1f}%",
              "instructions producing ultimately-dead values"),
             ("IPP", f"{metrics.ipp * 100:.1f}%",
              "instructions feeding only predicates"),
             ("NLD", f"{metrics.nld * 100:.1f}%",
              "allocation sites whose objects carry dead values")]))
    else:
        out.append("*(profile meta lacks the instruction count — "
                   "re-save with `--save-graph` from `profile`)*")
    out.append("")

    # -- overhead summary ----------------------------------------------------
    out.append("## Tracker overhead")
    out.append("")
    overhead = meta.get("overhead")
    if overhead:
        report = overhead_from_dict(overhead)
        out.append(_table(
            ("metric", "value"),
            [("untracked wall", f"{report.untracked_wall:.3f} s"),
             ("tracked wall", f"{report.tracked_wall:.3f} s"),
             ("overhead", f"{report.overhead:.1f}x"),
             ("instructions", report.instructions),
             ("measurement repeats", report.repeats)]))
        out.append("")
        out.append("The reproduction's analogue of the paper's Table-1 "
                   "overhead column: wall time under the cost tracker "
                   "relative to the bare interpreter.")
    else:
        out.append("*(not recorded — profile with `--self-profile` to "
                   "capture the tracked/untracked ratio)*")
    out.append("")
    return "\n".join(out)
