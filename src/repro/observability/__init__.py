"""Observability layer: run telemetry, self-profiling, bloat reports.

Three pieces (see ``docs/OBSERVABILITY.md``):

* :mod:`~repro.observability.telemetry` — the :class:`Telemetry` hub
  (counters / gauges / timers, span tracing, JSONL sink) threaded
  through the VM, the cost tracker, the batched slicing engine, and
  the parallel profiling runtime; zero-cost when disabled;
* :mod:`~repro.observability.overhead` — self-profiling, reporting
  tracker overhead as a ratio of untracked execution (the Table-1
  overhead-column analogue);
* :mod:`~repro.observability.bloatreport` — the Markdown bloat report
  behind ``python -m repro report``.
"""

from .bloatreport import render_bloat_report
from .overhead import (OverheadReport, measure_overhead,
                       overhead_from_dict, time_untracked)
from .telemetry import (DEFAULT_SAMPLE_INTERVAL, NULL, SCHEMA_VERSION,
                        JsonlSink, MemorySink, NullTelemetry, Telemetry,
                        current, emit_tracker_stats, opcode_class_counts,
                        read_jsonl, set_current, slot_collision_counts,
                        use)

__all__ = [
    "Telemetry", "NullTelemetry", "NULL", "JsonlSink", "MemorySink",
    "current", "set_current", "use", "read_jsonl",
    "SCHEMA_VERSION", "DEFAULT_SAMPLE_INTERVAL",
    "opcode_class_counts", "slot_collision_counts", "emit_tracker_stats",
    "OverheadReport", "measure_overhead", "overhead_from_dict",
    "time_untracked",
    "render_bloat_report",
]
