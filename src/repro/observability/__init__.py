"""Observability layer: run telemetry, tracing, self-profiling, reports.

Six pieces (see ``docs/OBSERVABILITY.md``):

* :mod:`~repro.observability.telemetry` — the :class:`Telemetry` hub
  (counters / gauges / timers, span tracing, JSONL sink) threaded
  through the VM, the cost tracker, the batched slicing engine, and
  the parallel profiling runtime; zero-cost when disabled; schema v2
  carries trace context (trace/span ids, ``pid``/``seq`` stamps) and
  relays worker-process events back into the parent's stream;
* :mod:`~repro.observability.trace` — the trace model: rebuild the
  cross-process span tree from a JSONL stream, attribute wall time
  per phase, compute the critical path (``python -m repro trace``);
* :mod:`~repro.observability.metrics` — live service metrics: the
  :class:`MetricsRegistry` of counters / gauges / fixed-bucket latency
  histograms the daemon snapshots for ``stats``/``health`` queries;
  zero-cost when disabled (:data:`NULL_METRICS`), stable JSON schema;
* :mod:`~repro.observability.flightrecorder` — the always-on bounded
  ring of recent telemetry events, dumped atomically to a JSONL file
  on faults / ``SIGUSR1`` / shutdown and replayable by ``repro trace``;
* :mod:`~repro.observability.overhead` — self-profiling, reporting
  tracker overhead as a ratio of untracked execution (the Table-1
  overhead-column analogue);
* :mod:`~repro.observability.bloatreport` — the Markdown / JSON bloat
  report behind ``python -m repro report``.
"""

from .bloatreport import bloat_report_data, render_bloat_report
from .flightrecorder import (DEFAULT_CAPACITY, FlightRecorder,
                             RecorderSink, arm_signal, current_recorder,
                             dump_current, install)
from .metrics import (LATENCY_BUCKETS, METRICS_SCHEMA, NULL_METRICS,
                      Histogram, MetricsRegistry, NullMetrics,
                      normalize_snapshot, stable_json)
from .overhead import (OverheadReport, measure_overhead,
                       overhead_from_dict, time_untracked)
from .telemetry import (DEFAULT_SAMPLE_INTERVAL, NULL, SCHEMA_VERSION,
                        JsonlSink, MemorySink, NullTelemetry, PipeSink,
                        SpanHandle, Telemetry, TraceContext, child_hub,
                        current, emit_tracker_stats, new_trace_id,
                        opcode_class_counts, read_jsonl, set_current,
                        slot_collision_counts, use)
from .trace import (Span, Trace, format_trace_report, load_trace,
                    trace_from_events, trace_to_dict)

__all__ = [
    "Telemetry", "NullTelemetry", "NULL", "JsonlSink", "MemorySink",
    "PipeSink", "current", "set_current", "use", "read_jsonl",
    "SCHEMA_VERSION", "DEFAULT_SAMPLE_INTERVAL",
    "TraceContext", "SpanHandle", "child_hub", "new_trace_id",
    "opcode_class_counts", "slot_collision_counts", "emit_tracker_stats",
    "Span", "Trace", "load_trace", "trace_from_events",
    "format_trace_report", "trace_to_dict",
    "MetricsRegistry", "NullMetrics", "NULL_METRICS", "Histogram",
    "LATENCY_BUCKETS", "METRICS_SCHEMA", "normalize_snapshot",
    "stable_json",
    "FlightRecorder", "RecorderSink", "DEFAULT_CAPACITY", "install",
    "current_recorder", "dump_current", "arm_signal",
    "OverheadReport", "measure_overhead", "overhead_from_dict",
    "time_untracked",
    "render_bloat_report", "bloat_report_data",
]
