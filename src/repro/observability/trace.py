"""Trace model: rebuild a run's span tree from a telemetry stream.

The supervisor and the parallel pool execute shards in child
processes, and schema v2 relays their telemetry back into the parent's
JSONL stream (see :mod:`repro.observability.telemetry`): one file ends
up holding events from every process of the run, each stamped with
``pid``/``seq``/``hub`` and — for spans — ``span_id``/``parent_id``
pairs that cross process boundaries (a worker's root ``shard.run``
span hangs under the parent's ``supervisor.map``/``parallel.map``
span).  This module turns that flat stream back into a tree and
answers the question PR 3's single-process hub could not: *where did
the wall time of an 8-shard supervised run actually go?*

* :func:`load_trace` / :func:`trace_from_events` — parse a stream,
  align per-process clocks (every hub's ``meta`` event carries
  ``t0_unix``), pair ``span.start``/``span`` events, and stitch the
  cross-process tree.  Spans whose process died before closing them
  (crashed or killed attempts) are kept as *unfinished*, ending at the
  last event their stream produced — failed attempts stay visible.
* :meth:`Trace.critical_path` — the chain of spans that bounds the
  run's wall: walking backward from the end of the trace, always
  through the span that finishes last, recursing into children.  Its
  duration is by construction ≤ the run wall; the gap between the two
  is time no recorded span accounts for.
* :func:`format_trace_report` — the ``python -m repro trace`` report:
  per-phase wall attribution, the shard table (every attempt,
  including failed ones), the critical path, retry waste, and the
  telemetry stream's own footprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .telemetry import read_jsonl


@dataclass
class Span:
    """One reconstructed span (a ``span.start``/``span`` event pair)."""

    span_id: str
    name: str
    parent_id: str = None
    pid: int = 0
    hub: str = ""
    #: Trace-relative seconds (0 = the earliest hub's creation).
    start: float = 0.0
    end: float = 0.0
    #: False when the stream holds the start but no close — the
    #: process died (or was killed) inside the span.
    finished: bool = True
    meta: dict = field(default_factory=dict)
    children: list = field(default_factory=list)
    #: Non-span events emitted while this span was innermost.
    events: list = field(default_factory=list)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def label(self) -> str:
        """Human-readable one-liner: name plus identifying metadata."""
        parts = [self.name]
        if "shard" in self.meta and self.meta["shard"] is not None:
            parts.append(f"shard={self.meta['shard']}")
        if self.meta.get("attempt"):
            parts.append(f"attempt={self.meta['attempt']}")
        if self.meta.get("label"):
            parts.append(f"[{self.meta['label']}]")
        if not self.finished:
            parts.append("(unfinished)")
        return " ".join(parts)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class PathStep:
    """One segment of the critical path.

    ``start``/``end`` are the segment's window — a span re-entered
    behind a later sibling contributes only the part of its duration
    the chain actually passes through, so summing top-level segment
    windows never exceeds the trace wall.
    """

    span: Span
    depth: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)


#: Meta-event fields that describe the stream itself, not a span.
_META_KEYS = ("schema", "sample_interval", "trace", "parent_span",
              "t0_unix")


class Trace:
    """A run's reconstructed cross-process trace."""

    def __init__(self, events):
        self.events = list(events)
        self.spans = {}          # span_id -> Span
        self.roots = []
        self.processes = {}      # hub id -> {"pid", "t0_unix", "events"}
        self.trace_ids = []
        self.schema = None
        self._build()

    # -- construction --------------------------------------------------------

    def _build(self):
        events = self.events
        # Pass 1: one clock origin per hub/stream.  Pre-v2 streams
        # have no hub stamps; treat the whole file as one stream.
        for event in events:
            hub = event.get("hub", "")
            proc = self.processes.setdefault(
                hub, {"pid": event.get("pid"), "t0_unix": None,
                      "events": 0, "last_t": 0.0})
            proc["events"] += 1
            proc["last_t"] = max(proc["last_t"], event.get("t", 0.0))
            if event.get("ev") == "meta":
                if event.get("t0_unix") is not None:
                    proc["t0_unix"] = event["t0_unix"]
                if event.get("trace") and event["trace"] not in self.trace_ids:
                    self.trace_ids.append(event["trace"])
                if self.schema is None:
                    self.schema = event.get("schema")
        known = [p["t0_unix"] for p in self.processes.values()
                 if p["t0_unix"] is not None]
        origin = min(known) if known else 0.0

        def at(event):
            t0 = self.processes[event.get("hub", "")]["t0_unix"]
            base = (t0 - origin) if t0 is not None else 0.0
            return base + event.get("t", 0.0)

        # Pass 2: pair span.start / span events into Span objects.
        open_spans = {}
        for event in events:
            kind = event.get("ev")
            if kind == "span.start":
                meta = {key: value for key, value in event.items()
                        if key not in ("ev", "t", "pid", "seq", "hub",
                                       "sp", "name", "span_id",
                                       "parent_id")}
                span = Span(span_id=event["span_id"], name=event["name"],
                            parent_id=event.get("parent_id"),
                            pid=event.get("pid", 0),
                            hub=event.get("hub", ""),
                            start=at(event), end=at(event),
                            finished=False, meta=meta)
                self.spans[span.span_id] = span
                open_spans[span.span_id] = span
            elif kind == "span":
                span = self.spans.get(event.get("span_id"))
                if span is None:
                    # Pre-v2 stream (or lost start): synthesize from
                    # the close alone so old files still render.
                    dur = event.get("dur", 0.0)
                    span = Span(span_id=event.get("span_id")
                                or f"synth.{len(self.spans)}",
                                name=event.get("name", "?"),
                                parent_id=event.get("parent_id"),
                                pid=event.get("pid", 0),
                                hub=event.get("hub", ""),
                                start=at(event) - dur, end=at(event))
                    self.spans[span.span_id] = span
                else:
                    span.end = at(event)
                    span.finished = True
                    open_spans.pop(span.span_id, None)

        # Unfinished spans end at their stream's last recorded event.
        for span in open_spans.values():
            proc = self.processes.get(span.hub)
            if proc is not None:
                t0 = proc["t0_unix"]
                base = (t0 - origin) if t0 is not None else 0.0
                span.end = max(span.start, base + proc["last_t"])

        # Pass 3: the tree, plus event attachment.
        for span in self.spans.values():
            parent = self.spans.get(span.parent_id)
            if parent is not None:
                parent.children.append(span)
            else:
                self.roots.append(span)
        for span in self.spans.values():
            span.children.sort(key=lambda s: (s.start, s.span_id))
        self.roots.sort(key=lambda s: (s.start, s.span_id))
        for event in events:
            span = self.spans.get(event.get("sp"))
            if span is not None and event.get("ev") not in ("span.start",
                                                            "span"):
                span.events.append(event)

        ends = [span.end for span in self.spans.values()]
        ends.extend(at(e) for e in events)
        starts = [span.start for span in self.spans.values()]
        self.wall = (max(ends) - min(min(starts), 0.0)) if ends else 0.0

    # -- queries -------------------------------------------------------------

    @property
    def trace_id(self):
        return self.trace_ids[0] if self.trace_ids else None

    def spans_named(self, name: str):
        return sorted((span for span in self.spans.values()
                       if span.name == name),
                      key=lambda s: (s.start, s.span_id))

    def shard_attempts(self):
        """Every ``shard.run`` span — one per shard *attempt*, failed
        and killed attempts included (their spans are unfinished)."""
        return sorted(self.spans_named("shard.run"),
                      key=lambda s: (s.meta.get("shard", -1),
                                     s.meta.get("attempt", 0)))

    def phase_walls(self) -> dict:
        """name -> total seconds over the trace's *root* spans (the
        parent process's top-level phases: compile/map/merge/...)."""
        walls = {}
        for span in self.roots:
            walls[span.name] = walls.get(span.name, 0.0) + span.duration
        return walls

    def retry_waste(self):
        """(seconds lost to non-final attempts, backoff seconds, count).

        A shard's final attempt is the work the merge kept; every
        earlier attempt's span is wall the run burned re-doing it, and
        the supervisor's ``supervisor.retry`` events record the
        backoff sleeps in between.
        """
        last_attempt = {}
        for span in self.shard_attempts():
            shard = span.meta.get("shard")
            attempt = span.meta.get("attempt", 0)
            if shard is None:
                continue
            known = last_attempt.get(shard, -1)
            last_attempt[shard] = max(known, attempt)
        wasted = 0.0
        count = 0
        for span in self.shard_attempts():
            shard = span.meta.get("shard")
            if shard is None:
                continue
            if span.meta.get("attempt", 0) < last_attempt[shard]:
                wasted += span.duration
                count += 1
        backoff = sum(event.get("delay_s", 0.0) for event in self.events
                      if event.get("ev") == "supervisor.retry")
        return wasted, backoff, count

    def telemetry_footprint(self) -> dict:
        """The stream's own cost: events per stream plus relay count."""
        relayed = 0
        for event in self.events:
            if event.get("ev") == "counters":
                relayed = max(relayed, event.get("counters", {})
                              .get("telemetry.relayed", 0))
        return {"events": len(self.events),
                "streams": len(self.processes),
                "relayed": relayed}

    # -- critical path -------------------------------------------------------

    def critical_path(self):
        """The span chain bounding the run's wall, as :class:`PathStep`\\ s.

        Walks backward from the latest end: at each level the step is
        the span that *ends last* before the cursor (the span the
        window's completion had to wait for — with parallel shards,
        the slowest one), clamped to the unclaimed window; then the
        walk continues from that span's start.  Children refine each
        step recursively.  Top-level steps never overlap, so
        :meth:`critical_path_duration` ≤ the trace wall.
        """
        steps = []

        def chain(spans, window_start, window_end, depth):
            out = []
            cursor = window_end
            remaining = [span for span in spans
                         if span.end > window_start
                         and span.start < window_end]
            while remaining and cursor > window_start:
                active = [span for span in remaining
                          if span.start < cursor]
                if not active:
                    break
                pick = max(active,
                           key=lambda s: (min(s.end, cursor), -s.start))
                seg_start = max(pick.start, window_start)
                seg_end = min(pick.end, cursor)
                if seg_end <= seg_start:
                    remaining.remove(pick)
                    continue
                step = PathStep(pick, depth, seg_start, seg_end)
                sub = chain(pick.children, seg_start, seg_end, depth + 1)
                out.append((step, sub))
                cursor = seg_start
                remaining.remove(pick)
            out.reverse()
            flat = []
            for step, sub in out:
                flat.append(step)
                flat.extend(sub)
            return flat

        if self.roots:
            window_end = max(span.end for span in self.roots)
            window_start = min(span.start for span in self.roots)
            steps = chain(self.roots, window_start, window_end, 0)
        return steps

    def critical_path_duration(self) -> float:
        return sum(step.duration for step in self.critical_path()
                   if step.depth == 0)


def trace_from_events(events) -> Trace:
    """Build a :class:`Trace` from an in-memory event list."""
    return Trace(events)


def load_trace(path) -> Trace:
    """Build a :class:`Trace` from a ``--telemetry`` JSONL file
    (crash-safe readback: a truncated trailing line is skipped)."""
    return Trace(read_jsonl(path))


# -- the report --------------------------------------------------------------


def _fmt_s(seconds: float) -> str:
    return f"{seconds:.3f}s"


def format_trace_report(trace: Trace, top: int = 10) -> str:
    """The ``python -m repro trace`` text report."""
    out = []
    ident = trace.trace_id or "(untraced stream)"
    out.append(f"trace {ident}: {len(trace.events)} events from "
               f"{len(trace.processes)} stream(s), "
               f"{len(trace.spans)} spans, wall {_fmt_s(trace.wall)}")
    if trace.schema is not None and trace.schema < 2:
        out.append("  (schema v1 stream: no cross-process relay; "
                   "re-profile with this version for the full trace)")
    out.append("")

    # Phase attribution over root spans.
    walls = trace.phase_walls()
    if walls:
        out.append("phases (top-level spans):")
        total = trace.wall or 1.0
        for name, wall in sorted(walls.items(), key=lambda kv: -kv[1]):
            out.append(f"  {name:<24} {_fmt_s(wall):>10}  "
                       f"{100.0 * wall / total:5.1f}%")
        unattributed = trace.wall - sum(walls.values())
        if unattributed > 0:
            out.append(f"  {'(unattributed)':<24} "
                       f"{_fmt_s(unattributed):>10}  "
                       f"{100.0 * unattributed / total:5.1f}%")
        out.append("")

    # Shard attempts, slowest first — every attempt, failed included.
    attempts = trace.shard_attempts()
    if attempts:
        out.append(f"shard attempts ({len(attempts)}, slowest first):")
        final = {}
        for span in attempts:
            shard = span.meta.get("shard")
            final[shard] = max(final.get(shard, 0),
                               span.meta.get("attempt", 0))
        ranked = sorted(attempts, key=lambda s: -s.duration)
        for span in ranked[:top]:
            status = "ok" if span.finished else "died"
            if (status == "ok" and span.meta.get("attempt", 0)
                    < final.get(span.meta.get("shard"), 0)):
                status = "superseded"
            if span.meta.get("partial"):
                status = "partial"
            out.append(f"  shard {span.meta.get('shard', '?')!s:>3} "
                       f"attempt {span.meta.get('attempt', 0)} "
                       f"pid {span.pid:<8} {_fmt_s(span.duration):>10}  "
                       f"{status}"
                       + (f"  [{span.meta['label']}]"
                          if span.meta.get("label") else ""))
        if len(attempts) > top:
            out.append(f"  ... {len(attempts) - top} more")
        out.append("")

    # Critical path.
    path = trace.critical_path()
    if path:
        duration = trace.critical_path_duration()
        out.append(f"critical path ({_fmt_s(duration)} of "
                   f"{_fmt_s(trace.wall)} wall):")
        for step in path:
            indent = "  " + "  " * step.depth
            out.append(f"{indent}{step.span.label():<40} "
                       f"{_fmt_s(step.duration):>10}")
        out.append("")

    # Retry waste.
    wasted, backoff, count = trace.retry_waste()
    if count or backoff:
        out.append(f"retry waste: {_fmt_s(wasted)} across {count} "
                   f"superseded attempt(s), plus {_fmt_s(backoff)} "
                   f"backoff")
        out.append("")

    # The stream's own footprint.
    footprint = trace.telemetry_footprint()
    out.append(f"telemetry footprint: {footprint['events']} events, "
               f"{footprint['relayed']} relayed from workers, "
               f"{footprint['streams']} stream(s)")
    return "\n".join(out)


def trace_to_dict(trace: Trace, top: int = 10) -> dict:
    """Machine-readable form of the trace report (``--format json``)."""

    def span_dict(span):
        return {"span_id": span.span_id, "name": span.name,
                "parent_id": span.parent_id, "pid": span.pid,
                "start": round(span.start, 6), "end": round(span.end, 6),
                "duration": round(span.duration, 6),
                "finished": span.finished, "meta": span.meta,
                "children": [span_dict(child) for child in span.children]}

    wasted, backoff, count = trace.retry_waste()
    return {
        "trace_id": trace.trace_id,
        "schema": trace.schema,
        "wall_s": round(trace.wall, 6),
        "events": len(trace.events),
        "streams": len(trace.processes),
        "phases": {name: round(wall, 6)
                   for name, wall in sorted(trace.phase_walls().items())},
        "span_tree": [span_dict(span) for span in trace.roots],
        "shard_attempts": [
            {"shard": span.meta.get("shard"),
             "attempt": span.meta.get("attempt", 0),
             "label": span.meta.get("label", ""),
             "pid": span.pid,
             "duration": round(span.duration, 6),
             "finished": span.finished}
            for span in trace.shard_attempts()],
        "critical_path": [
            {"name": step.span.name, "depth": step.depth,
             "span_id": step.span.span_id,
             "duration": round(step.duration, 6)}
            for step in trace.critical_path()],
        "critical_path_s": round(trace.critical_path_duration(), 6),
        "retry_waste_s": round(wasted, 6),
        "retry_backoff_s": round(backoff, 6),
        "superseded_attempts": count,
        "telemetry": trace.telemetry_footprint(),
    }
