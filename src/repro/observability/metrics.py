"""Live service metrics: counters, gauges, fixed-bucket histograms.

The resident daemon (``python -m repro serve``) needs *queryable*
operational state — request rates, per-message-type latency
distributions, per-tenant memory accounting — without re-reading JSONL
telemetry files after the fact.  :class:`MetricsRegistry` is that
surface: a tiny in-process registry the daemon updates on its (single-
threaded) event loop and snapshots on ``stats``/``health`` queries.

The design mirrors the :class:`~repro.observability.telemetry.Telemetry`
hub's zero-cost contract:

* :data:`NULL_METRICS` (a :class:`NullMetrics`) is the disabled
  registry; every method is a no-op and ``enabled`` is ``False``;
* hot paths guard on that one attribute and skip the clock reads and
  dict updates entirely, so a daemon started with ``--no-metrics``
  does *exactly zero* extra work per request
  (``tests/test_metrics_registry.py`` asserts this structurally and
  ``benchmarks/bench_matrix.py`` gates the enabled-mode overhead).

Latency histograms use **fixed bucket bounds** (:data:`LATENCY_BUCKETS`,
seconds) so an ``observe`` is one bisect plus two adds — no per-sample
allocation, no reservoir, and snapshots from different daemons are
directly comparable.  p50/p95/p99 are derived from the buckets by
linear interpolation at snapshot time (upper-bounded by the bucket
ceiling, so a quantile never exaggerates a latency).

Snapshots follow a **stable JSON schema** (:data:`METRICS_SCHEMA`,
documented in ``docs/OBSERVABILITY.md``): keys are emitted sorted, and
every wall-clock-dependent field is named with an ``_s`` / ``_unix``
suffix so :func:`normalize_snapshot` can strip timing noise — two
snapshots taken after identical request loads normalize to
byte-identical JSON, which is what the service tests assert.
"""

from __future__ import annotations

import json
import time
from bisect import bisect_left

#: Version stamped into every snapshot (bump on layout change).
METRICS_SCHEMA = 1

#: Fixed histogram bucket upper bounds, in seconds.  Spans 100 µs to
#: 10 s — the daemon's request latencies sit in the low-millisecond
#: range, heavy ``report`` queries in the hundreds of milliseconds.
#: The implicit final bucket catches everything above the last bound.
LATENCY_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
                   0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
                   10.0)


class Histogram:
    """One fixed-bucket latency histogram (bounds in seconds).

    ``counts`` has ``len(bounds) + 1`` cells; the last is the overflow
    bucket (observations above the largest bound).
    """

    __slots__ = ("bounds", "counts", "count", "sum_s")

    def __init__(self, bounds=LATENCY_BUCKETS):
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum_s = 0.0

    def observe(self, seconds: float) -> None:
        self.counts[bisect_left(self.bounds, seconds)] += 1
        self.count += 1
        self.sum_s += seconds

    def quantile(self, q: float) -> float:
        """The q-quantile (0 < q <= 1), linearly interpolated inside
        the bucket that crosses it; an overflow-bucket hit reports the
        largest finite bound (the histogram cannot resolve beyond it).
        Returns 0.0 for an empty histogram."""
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, cell in enumerate(self.counts):
            if cell == 0:
                continue
            if seen + cell >= rank:
                if index >= len(self.bounds):
                    return self.bounds[-1]
                low = self.bounds[index - 1] if index else 0.0
                high = self.bounds[index]
                return low + (high - low) * (rank - seen) / cell
            seen += cell
        return self.bounds[-1]

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum_s": round(self.sum_s, 6),
            "buckets": {
                "le": [*self.bounds, "inf"],
                "counts": list(self.counts),
            },
            "p50_s": round(self.quantile(0.50), 6),
            "p95_s": round(self.quantile(0.95), 6),
            "p99_s": round(self.quantile(0.99), 6),
        }


class NullMetrics:
    """The disabled registry: every operation is a no-op.

    Method-compatible with :class:`MetricsRegistry` so cold paths can
    call it unconditionally; hot paths must guard on ``enabled`` and
    skip the clock read *and* the call (the structural guard test
    counts calls on a subclass and requires exactly zero).
    """

    enabled = False

    def inc(self, name, delta=1):
        pass

    def gauge(self, name, value):
        pass

    def observe(self, name, seconds):
        pass

    def snapshot(self):
        return {"schema": METRICS_SCHEMA, "enabled": False}


NULL_METRICS = NullMetrics()


class MetricsRegistry:
    """Counters, gauges, and latency histograms with stable snapshots.

    Lock-cheap by construction: the daemon's event loop is single-
    threaded, so updates are plain dict operations — no lock at all.
    (Anything off-loop must confine itself to snapshots, which read
    atomically enough under the GIL for monitoring purposes.)
    """

    enabled = True

    def __init__(self, buckets=LATENCY_BUCKETS):
        self.buckets = tuple(buckets)
        self.counters = {}
        self.gauges = {}
        self.histograms = {}
        self.created_unix = time.time()

    def inc(self, name: str, delta=1) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta

    def gauge(self, name: str, value) -> None:
        self.gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(self.buckets)
        histogram.observe(seconds)

    def snapshot(self) -> dict:
        """The registry as a stable JSON-ready dict (sorted keys)."""
        return {
            "schema": METRICS_SCHEMA,
            "enabled": True,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {name: histogram.snapshot()
                           for name, histogram
                           in sorted(self.histograms.items())},
        }


# -- snapshot normalization ---------------------------------------------------

#: Key suffixes that mark wall-clock-dependent values.  Everything the
#: snapshot schema measures in wall time carries one of these, which is
#: what lets :func:`normalize_snapshot` strip timing without a schema-
#: specific field list.
TIMING_SUFFIXES = ("_s", "_unix")


def _is_timing_key(key) -> bool:
    return isinstance(key, str) and key.endswith(TIMING_SUFFIXES)


def normalize_snapshot(doc):
    """A deep copy of ``doc`` with every timing field zeroed.

    * any key ending in ``_s`` or ``_unix`` (latencies, uptimes,
      timestamps) becomes ``0``;
    * histogram bucket ``counts`` are zeroed too — *which* bucket a
      request lands in is wall-clock noise even though the total
      ``count`` is deterministic.

    Two stats responses taken after identical request loads normalize
    to equal documents; ``stable_json`` of each is byte-identical.
    """
    return _normalize(doc)


def _normalize(value, key=None):
    if isinstance(value, dict):
        if set(value) == {"le", "counts"}:   # a histogram bucket table
            return {"le": list(value["le"]),
                    "counts": [0] * len(value["counts"])}
        return {k: _normalize(v, k) for k, v in value.items()}
    if isinstance(value, list):
        return [_normalize(item, key) for item in value]
    if _is_timing_key(key) and isinstance(value, (int, float)) \
            and not isinstance(value, bool):
        return 0
    return value


def stable_json(doc) -> str:
    """Canonical serialization for byte-for-byte snapshot comparison."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))
