"""Structured run telemetry: counters, gauges, timers, span tracing.

The paper's tool ran inside a production JVM where per-phase overhead,
context-register health, and shadow-memory footprint were operational
concerns (Table 1 reports instrumentation overheads next to the
analysis results).  This module is the reproduction's analogue: a
:class:`Telemetry` hub that the VM, the cost tracker, the batched
slicing engine, and the parallel runtime report into, with a JSONL
event sink for offline inspection (``docs/OBSERVABILITY.md`` documents
the schema).

Zero-cost-when-disabled is a hard requirement — profiling overhead is
the subject being measured, so the measurement must not perturb it:

* the default hub is :data:`NULL` (a :class:`NullTelemetry`), whose
  every method is a no-op and whose ``enabled`` attribute is False;
* hot paths guard on that one attribute.  The VM dispatch loop folds
  its sampling checkpoint into the instruction-budget comparison it
  already performs, so the disabled-mode loop is *instruction-for-
  instruction identical* to the un-instrumented interpreter
  (``tests/test_telemetry.py`` asserts this structurally);
* per-opcode-class instruction counters are derived from the Gcost
  node frequencies *after* the run instead of being counted in the
  dispatch loop.

Events are plain dicts; every event carries ``ev`` (its kind), ``t``
(seconds since the hub was created), ``pid``, a per-hub monotonic
``seq``, and ``hub`` (the emitting stream's id).  Sinks receive events
as they are emitted; :class:`JsonlSink` writes one JSON object per
line.

Schema v2 adds *distributed tracing*: every hub belongs to a trace
(``trace_id``), spans carry ``span_id``/``parent_id`` and emit a
``span.start`` event on entry (so attempts that crash mid-span still
appear in the stream), and a worker process can run a *child hub*
(:func:`child_hub`) whose events are relayed back into the parent's
sink — through the supervisor's result pipe (:class:`PipeSink`) or a
per-shard JSONL spool — so one stream holds the whole run as a single
stitched trace.  ``repro.observability.trace`` rebuilds the span tree
and ``python -m repro trace run.jsonl`` renders the report.  Child
hubs only ever exist when the parent's hub is enabled, preserving the
zero-cost contract end to end.
"""

from __future__ import annotations

import atexit
import itertools
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace

#: Schema version stamped into the leading ``meta`` event of a stream.
SCHEMA_VERSION = 2

#: Default instructions-between-samples for the VM growth samples.
DEFAULT_SAMPLE_INTERVAL = 65_536


# -- sinks -------------------------------------------------------------------


class MemorySink:
    """Accumulates events in a list (tests, in-process inspection)."""

    def __init__(self):
        self.events = []

    def emit(self, event: dict):
        self.events.append(event)

    def close(self):
        pass


class JsonlSink:
    """Appends one JSON object per event to a file.

    Crash-safe by construction: the handle is flushed after every
    ``flush_every`` events (default: every event, i.e. every batch the
    hub emits) and registered with ``atexit``, so events written
    before a worker crash or an un-closed interpreter exit survive as
    complete, parseable lines rather than dying in the buffer.
    ``close`` is idempotent, and events emitted after close (e.g. a
    hub flushed after the atexit pass) are dropped rather than raised.
    """

    def __init__(self, path, flush_every: int = 1):
        self.path = path
        self.flush_every = max(1, int(flush_every))
        self._pending = 0
        self._handle = open(path, "w")
        atexit.register(self.close)

    def emit(self, event: dict):
        handle = self._handle
        if handle.closed:
            return
        handle.write(json.dumps(event, sort_keys=True))
        handle.write("\n")
        self._pending += 1
        if self._pending >= self.flush_every:
            handle.flush()
            self._pending = 0

    def close(self):
        if self._handle.closed:
            return
        self._handle.flush()
        self._handle.close()
        atexit.unregister(self.close)


class PipeSink:
    """Relays events through a ``multiprocessing`` connection.

    The supervisor's worker-side sink: each event is sent immediately
    as an ``("ev", event)`` message on the result pipe, so the parent
    receives intra-shard telemetry *while the attempt runs* — events
    emitted before a crash, hang, or kill survive in the parent's
    stream even though the attempt never completes.  A broken pipe
    (parent already gave up on this attempt) drops events silently.
    """

    def __init__(self, conn):
        self.conn = conn
        self._broken = False

    def emit(self, event: dict):
        if self._broken:
            return
        try:
            self.conn.send(("ev", event))
        except (BrokenPipeError, OSError):
            self._broken = True

    def close(self):
        # The connection belongs to the worker body, which still has
        # its final result message to send.
        pass


def read_jsonl(path):
    """Parse a :class:`JsonlSink` file back into a list of events.

    Crash-safe readback: a stream cut mid-line by a dying writer keeps
    every complete line — an undecodable *trailing* line is skipped
    rather than raised.  Corruption anywhere earlier (a bad line with
    valid lines after it) is still an error: that is damage, not
    truncation.
    """
    with open(path) as handle:
        lines = [line.strip() for line in handle]
    lines = [(number, line) for number, line in enumerate(lines, 1)
             if line]
    events = []
    for position, (number, line) in enumerate(lines):
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if position == len(lines) - 1:
                break  # truncated trailing line: the writer died mid-write
            raise
    return events


# -- the disabled hub --------------------------------------------------------


class _NullSpan:
    """Reusable no-op context manager returned by ``NullTelemetry.span``."""

    __slots__ = ()

    #: Mirrors :class:`SpanHandle` so callers can read the id
    #: unconditionally (it is ``None``: no span was recorded).
    span_id = None
    parent_id = None
    name = ""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """The disabled hub: every operation is a no-op.

    Kept method-compatible with :class:`Telemetry` so cold paths can
    call it unconditionally; hot paths must still guard on
    ``enabled`` and skip the call entirely.
    """

    enabled = False

    def inc(self, name, delta=1):
        pass

    def gauge(self, name, value):
        pass

    def timer_add(self, name, seconds, count=1):
        pass

    def event(self, kind, **fields):
        pass

    def span(self, name, **meta):
        return _NULL_SPAN

    def relay(self, event):
        pass

    def trace_context(self):
        """Disabled hubs propagate nothing: child processes of a run
        with telemetry off must not build hubs of their own."""
        return None

    def vm_sample(self, vm, stack, count):  # pragma: no cover - guarded
        return count + DEFAULT_SAMPLE_INTERVAL

    def vm_finish(self, vm):
        pass

    def flush(self):
        pass

    def close(self):
        pass


NULL = NullTelemetry()

_current = NULL


def current():
    """The process-wide active hub (:data:`NULL` unless installed)."""
    return _current


def set_current(hub):
    """Install ``hub`` as the active hub; returns the previous one."""
    global _current
    previous = _current
    _current = hub if hub is not None else NULL
    return previous


@contextmanager
def use(hub):
    """Scope ``hub`` as the active hub for a ``with`` block."""
    previous = set_current(hub)
    try:
        yield hub
    finally:
        set_current(previous)


# -- trace context -----------------------------------------------------------


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (random; telemetry-only, so the
    randomness never touches the deterministic profiling paths)."""
    return os.urandom(8).hex()


#: Per-process hub ordinal: with the pid it makes hub/stream ids unique
#: even when several hubs live in one process (in-process relay).
_hub_ordinal = itertools.count(1)


@dataclass(frozen=True)
class TraceContext:
    """What a parent hub ships into a worker process.

    ``trace_id`` names the whole run; ``parent_span`` is the span the
    child's root span hangs under (the supervisor/pool map span);
    ``sample_interval`` keeps child VM sampling at the parent's
    cadence.  ``shard``/``attempt``/``label`` are stamped per attempt
    by the launcher (:func:`for_shard`).  Plain frozen dataclass —
    picklable across any start method.
    """

    trace_id: str
    parent_span: str = None
    sample_interval: int = DEFAULT_SAMPLE_INTERVAL
    shard: int = None
    attempt: int = 0
    label: str = ""

    def for_shard(self, shard: int, attempt: int = 0,
                  label: str = "") -> "TraceContext":
        return replace(self, shard=shard, attempt=attempt, label=label)


class SpanHandle:
    """What :meth:`Telemetry.span` yields: the span's identity."""

    __slots__ = ("span_id", "parent_id", "name")

    def __init__(self, span_id, parent_id, name):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name


def child_hub(context: TraceContext, sink) -> "Telemetry":
    """The worker-side hub of a relayed trace.

    Joins the parent's trace (same ``trace_id``; root spans hang under
    ``context.parent_span``) and inherits its sampling cadence.  Only
    ever called when the parent's hub was enabled — a disabled parent
    propagates no :class:`TraceContext` at all.
    """
    return Telemetry(sink=sink, sample_interval=context.sample_interval,
                     trace_id=context.trace_id,
                     parent_span=context.parent_span)


# -- the live hub ------------------------------------------------------------


class Telemetry:
    """Counter/gauge/timer hub with span tracing and an event sink.

    Parameters
    ----------
    sink:
        Event consumer (:class:`JsonlSink`, :class:`MemorySink`, or
        anything with ``emit(dict)``/``close()``).  Defaults to an
        in-memory sink.
    sample_interval:
        Instructions between VM growth samples (node/edge counts,
        shadow-location population, heap allocations).
    trace_id / parent_span:
        Trace membership (schema v2).  By default every hub starts a
        fresh trace; worker-side hubs join the parent's via
        :func:`child_hub`.
    """

    enabled = True

    def __init__(self, sink=None, sample_interval=DEFAULT_SAMPLE_INTERVAL,
                 clock=time.perf_counter, trace_id=None, parent_span=None):
        self.sink = sink if sink is not None else MemorySink()
        self.sample_interval = sample_interval
        self.counters = {}
        self.gauges = {}
        #: span/timer name -> [invocations, total seconds]
        self.timers = {}
        self._clock = clock
        self._t0 = clock()
        self.trace_id = trace_id if trace_id else new_trace_id()
        self.parent_span = parent_span
        self.pid = os.getpid()
        #: Stream id: unique per hub even within one process, so span
        #: ids never collide between a parent hub and an in-process
        #: child hub, and the trace loader can group events per stream.
        self.hub_id = f"{self.pid:x}.{next(_hub_ordinal)}"
        self._seq = 0
        self._spans = 0
        #: Open-span stack; the top is the enclosing span of every
        #: event emitted right now (``sp`` field).
        self._span_stack = []
        self.event("meta", schema=SCHEMA_VERSION,
                   sample_interval=sample_interval,
                   trace=self.trace_id, parent_span=parent_span,
                   t0_unix=round(time.time(), 6))

    # -- primitives ----------------------------------------------------------

    def _now(self) -> float:
        return self._clock() - self._t0

    def inc(self, name: str, delta=1):
        self.counters[name] = self.counters.get(name, 0) + delta

    def gauge(self, name: str, value):
        self.gauges[name] = value

    def timer_add(self, name: str, seconds: float, count: int = 1):
        timer = self.timers.get(name)
        if timer is None:
            self.timers[name] = [count, seconds]
        else:
            timer[0] += count
            timer[1] += seconds

    def event(self, kind: str, **fields):
        self._seq += 1
        record = {"ev": kind, "t": round(self._now(), 6),
                  "pid": self.pid, "seq": self._seq, "hub": self.hub_id}
        if self._span_stack:
            record["sp"] = self._span_stack[-1]
        record.update(fields)
        self.sink.emit(record)

    def relay(self, event: dict):
        """Append an already-formed event from another stream verbatim.

        The cross-process stitch: child-hub events (carrying their own
        ``t``/``pid``/``seq``/``hub`` and span ids) land in this hub's
        sink untouched, so one JSONL file holds the whole trace.
        """
        self.inc("telemetry.relayed")
        self.sink.emit(event)

    def _enter_span(self, name, meta):
        parent = (self._span_stack[-1] if self._span_stack
                  else self.parent_span)
        self._spans += 1
        span_id = f"{self.hub_id}.{self._spans}"
        self.event("span.start", name=name, span_id=span_id,
                   parent_id=parent, **meta)
        self._span_stack.append(span_id)
        return SpanHandle(span_id, parent, name)

    @contextmanager
    def span(self, name: str, **meta):
        """Phase trace: times the block, emits paired ``span.start`` /
        ``span`` events (start survives even if the process dies inside
        the block), and yields the :class:`SpanHandle`."""
        handle = self._enter_span(name, meta)
        start = self._now()
        try:
            yield handle
        finally:
            duration = self._now() - start
            self._span_stack.pop()
            self.timer_add(name, duration)
            self.event("span", name=name, span_id=handle.span_id,
                       parent_id=handle.parent_id,
                       dur=round(duration, 6), **meta)

    def trace_context(self) -> TraceContext:
        """The context a worker launched *right now* should inherit:
        this hub's trace, with the currently open span (if any) as the
        child's parent."""
        parent = (self._span_stack[-1] if self._span_stack
                  else self.parent_span)
        return TraceContext(trace_id=self.trace_id, parent_span=parent,
                            sample_interval=self.sample_interval)

    # -- VM integration ------------------------------------------------------

    def vm_sample(self, vm, stack, count: int) -> int:
        """Growth sample at an instruction checkpoint; returns the next
        checkpoint.

        Reports executed instructions, heap allocations, live
        shadow-location population (per-frame shadow maps plus the
        tracker's static shadow), and — when the tracer builds a
        dependence graph — Gcost node/edge counts, so node/edge growth
        and shadow-memory footprint are visible *over time*, not just
        at exit.
        """
        shadow = 0
        for frame in stack:
            frame_shadow = getattr(frame, "shadow", None)
            if frame_shadow:
                shadow += len(frame_shadow)
        fields = {"i": count, "heap": vm.heap.total_allocated,
                  "shadow": shadow, "frames": len(stack)}
        tracer = vm.tracer
        if tracer is not None:
            graph = getattr(tracer, "graph", None)
            if graph is not None:
                fields["nodes"] = graph.num_nodes
                fields["edges"] = graph.num_edges
            static_shadow = getattr(tracer, "_static_shadow", None)
            if static_shadow:
                fields["shadow"] += len(static_shadow)
        self.event("sample", **fields)
        return count + self.sample_interval

    def vm_finish(self, vm):
        """Run summary: totals plus per-opcode-class counters.

        The opcode-class counts are derived from the tracker's Gcost
        node frequencies (each traced instruction execution bumps its
        node exactly once), so the dispatch loop never counts opcodes
        itself.  Control/glue instructions that create no Gcost node
        (jumps, calls, returns, untracked phases) land in the
        ``control/untracked`` remainder.
        """
        counts = opcode_class_counts(vm)
        for name, value in counts.items():
            self.inc(f"vm.instr[{name}]", value)
        self.event("vm.run", instructions=vm.instr_count,
                   heap=vm.heap.total_allocated,
                   phases=dict(vm.phase_counts))

    # -- lifecycle -----------------------------------------------------------

    def flush(self):
        """Emit accumulated counters/gauges/timers as summary events."""
        if self.counters:
            self.event("counters",
                       counters=dict(sorted(self.counters.items())))
        if self.gauges:
            self.event("gauges", gauges=dict(sorted(self.gauges.items())))
        if self.timers:
            self.event("timers",
                       timers={name: {"n": n, "total": round(total, 6)}
                               for name, (n, total)
                               in sorted(self.timers.items())})

    def close(self):
        self.flush()
        self.sink.close()


# -- derived statistics ------------------------------------------------------

#: opcode value -> human-readable opcode class (report/counter labels).
OPCODE_CLASSES = {}


def _init_opcode_classes():
    from ..ir import instructions as ins
    OPCODE_CLASSES.update({
        ins.OP_CONST: "const",
        ins.OP_MOVE: "move",
        ins.OP_BINOP: "binop",
        ins.OP_UNOP: "unop",
        ins.OP_INTRINSIC: "intrinsic",
        ins.OP_BRANCH: "branch",
        ins.OP_JUMP: "jump",
        ins.OP_NEW_OBJECT: "alloc",
        ins.OP_NEW_ARRAY: "alloc",
        ins.OP_LOAD_FIELD: "heap_read",
        ins.OP_ARRAY_LOAD: "heap_read",
        ins.OP_LOAD_STATIC: "heap_read",
        ins.OP_STORE_FIELD: "heap_write",
        ins.OP_ARRAY_STORE: "heap_write",
        ins.OP_STORE_STATIC: "heap_write",
        ins.OP_ARRAY_LEN: "array_len",
        ins.OP_CALL: "call",
        ins.OP_RETURN: "return",
        ins.OP_CALL_NATIVE: "native",
    })


def opcode_class_counts(vm) -> dict:
    """Executed-instruction counts per opcode class, derived post-run.

    Sums the Gcost node frequencies per static instruction (every
    traced execution bumps its ``(iid, d)`` node once; summing over
    ``d`` recovers the per-instruction count) and buckets them by
    opcode class.  Instructions the tracker does not materialize as
    nodes — jumps, calls, returns — plus anything executed while
    tracking was disabled are reported as ``control/untracked``.
    Returns an empty dict for untracked runs (no graph to derive
    from).
    """
    tracer = vm.tracer
    graph = getattr(tracer, "graph", None) if tracer is not None else None
    if graph is None:
        return {}
    if not OPCODE_CLASSES:
        _init_opcode_classes()
    class_of = {instr.iid: OPCODE_CLASSES.get(instr.op, "other")
                for instr in vm.program.instructions}
    counts = {}
    traced = 0
    for node, (iid, _d) in enumerate(graph.node_keys):
        name = class_of.get(iid, "other")
        freq = graph.freq[node]
        counts[name] = counts.get(name, 0) + freq
        traced += freq
    remainder = vm.instr_count - traced
    if remainder > 0:
        counts["control/untracked"] = remainder
    return counts


def slot_collision_counts(tracker) -> dict:
    """Context-slot collision counts: slot ``d`` -> extra contexts.

    A collision happens when several distinct encoded contexts of one
    static instruction hash to the same context slot (the conflation
    the conflict ratio of §2.3 averages).  For every graph node with a
    recorded context set, ``len(set) - 1`` contexts beyond the first
    are conflated into its slot; summing per slot shows which of the
    ``s`` slots absorb the conflation.
    """
    collisions = {}
    node_keys = tracker.graph.node_keys
    for node, gs in enumerate(tracker._node_gs):
        if not gs or len(gs) <= 1:
            continue
        slot = node_keys[node][1]
        collisions[slot] = collisions.get(slot, 0) + len(gs) - 1
    return collisions


def emit_tracker_stats(telemetry, tracker) -> None:
    """Flush tracker-side health statistics into the hub.

    Emits a ``tracker`` event (graph size, memory estimate, CR,
    per-slot collision counts) and mirrors the headline numbers as
    gauges.  Cold path — call once per run, after execution.
    """
    if not telemetry.enabled:
        return
    graph = tracker.graph
    cr = tracker.conflict_ratio()
    collisions = slot_collision_counts(tracker)
    telemetry.gauge("tracker.nodes", graph.num_nodes)
    telemetry.gauge("tracker.edges", graph.num_edges)
    telemetry.gauge("tracker.memory_bytes", graph.memory_bytes())
    telemetry.gauge("tracker.cr", round(cr, 6))
    telemetry.event("tracker", slots=tracker.slots,
                    nodes=graph.num_nodes, edges=graph.num_edges,
                    ref_edges=len(graph.ref_edges),
                    memory_bytes=graph.memory_bytes(),
                    cr=round(cr, 6),
                    slot_collisions={str(slot): n for slot, n
                                     in sorted(collisions.items())})
