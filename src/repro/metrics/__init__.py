"""Evaluation harnesses regenerating the paper's tables and figures."""

from .casestudies import (CaseStudyResult, format_case_studies,
                          run_all_case_studies, run_case_study)
from .table1 import (Table1Row, format_table1, generate_table1,
                     profile_workload)

__all__ = [
    "Table1Row", "generate_table1", "format_table1", "profile_workload",
    "CaseStudyResult", "run_case_study", "run_all_case_studies",
    "format_case_studies",
]
