"""Table 1 harness: Gcost characteristics and bloat measurement.

Regenerates, for every workload in the suite and for s ∈ {8, 16}:

* part (a)/(b): #nodes (N), #edges (E), graph memory (M), run-time
  overhead of tracking (O, wall-clock ratio traced/untraced), and the
  context conflict ratio (CR);
* part (c), for s = 16: total instruction instances (I), IPD, IPP, NLD.

Absolute values differ from the paper (Python VM over synthetic
workloads vs. J9 over DaCapo); the *shape* properties asserted by
tests and recorded in EXPERIMENTS.md are: N and E are bounded and tiny
relative to I; memory is modest; CR is small and does not grow from
s=8 to s=16; tracking overhead is a significant multiple; IPD is
largest for the workloads whose case studies yield the biggest
speedups.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..analyses import measure_bloat
from ..profiler import CostTracker
from ..vm import VM
from ..workloads import all_workloads


@dataclass
class Table1Row:
    name: str
    slots: int
    nodes: int
    edges: int
    memory_bytes: int
    overhead: float        # traced wall-clock / untraced wall-clock
    cr: float
    instructions: int      # I
    ipd: float
    ipp: float
    nld: float


def profile_workload(spec, slots: int, variant: str = "unopt",
                     scale=None) -> Table1Row:
    """One Table-1 row: run untraced for the time baseline, then traced."""
    program = spec.build(variant, scale)

    start = time.perf_counter()
    plain_vm = VM(program)
    plain_vm.run()
    plain_seconds = time.perf_counter() - start

    tracker = CostTracker(slots=slots)
    start = time.perf_counter()
    traced_vm = VM(program, tracer=tracker)
    traced_vm.run()
    traced_seconds = time.perf_counter() - start

    if traced_vm.stdout() != plain_vm.stdout():
        raise AssertionError(
            f"{spec.name}: tracking changed program output")

    graph = tracker.graph
    # Freeze once: measure_bloat runs over the CSR snapshot and
    # memory_bytes reports the flat-array accounting.
    graph.freeze()
    metrics = measure_bloat(graph, traced_vm.instr_count)
    overhead = traced_seconds / plain_seconds if plain_seconds > 0 \
        else float("inf")
    return Table1Row(
        name=spec.name,
        slots=slots,
        nodes=graph.num_nodes,
        edges=graph.num_edges,
        memory_bytes=graph.memory_bytes(),
        overhead=overhead,
        cr=tracker.conflict_ratio(),
        instructions=traced_vm.instr_count,
        ipd=metrics.ipd,
        ipp=metrics.ipp,
        nld=metrics.nld,
    )


def generate_table1(slots_values=(8, 16), scale=None, specs=None):
    """All rows; ``scale`` overrides workload scales (for quick runs)."""
    if specs is None:
        specs = all_workloads()
    rows = []
    for spec in specs:
        for slots in slots_values:
            rows.append(profile_workload(spec, slots, scale=scale))
    return rows


def format_table1(rows) -> str:
    lines = [
        "program         s  #N     #E     M(KB)   O(x)  CR     "
        "I          IPD%   IPP%   NLD%",
        "-" * 92,
    ]
    for row in rows:
        lines.append(
            f"{row.name:<14}{row.slots:>3}  "
            f"{row.nodes:<6} {row.edges:<6} "
            f"{row.memory_bytes / 1024:<7.1f} "
            f"{row.overhead:<5.1f} {row.cr:<6.3f} "
            f"{row.instructions:<10} "
            f"{row.ipd * 100:<6.1f} {row.ipp * 100:<6.1f} "
            f"{row.nld * 100:<6.1f}")
    return "\n".join(lines)
