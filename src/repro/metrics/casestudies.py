"""Case-study harness (§4.2): unoptimized vs optimized workloads.

For each workload the harness

1. runs both variants and checks their program output is identical
   (the fixes are semantics-preserving),
2. reports the reduction in executed instructions, wall-clock time,
   and objects allocated,
3. profiles the unoptimized variant and checks the tool's cost-benefit
   report actually points at the bloat (the culprit allocation sites
   rank near the top) — the paper's workflow of reading the report and
   fixing what it names.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..analyses import analyze_cost_benefit
from ..profiler import CostTracker
from ..vm import VM
from ..workloads import all_workloads


@dataclass
class CaseStudyResult:
    name: str
    paper_analogue: str
    unopt_instructions: int
    opt_instructions: int
    unopt_seconds: float
    opt_seconds: float
    unopt_allocations: int
    opt_allocations: int
    outputs_match: bool
    expected_band: tuple
    #: Ranked cost-benefit report of the unoptimized run (top entries).
    top_sites: list = field(default_factory=list)

    @property
    def instruction_reduction(self) -> float:
        if self.unopt_instructions == 0:
            return 0.0
        return 1.0 - self.opt_instructions / self.unopt_instructions

    @property
    def time_reduction(self) -> float:
        if self.unopt_seconds == 0:
            return 0.0
        return 1.0 - self.opt_seconds / self.unopt_seconds

    @property
    def allocation_reduction(self) -> float:
        if self.unopt_allocations == 0:
            return 0.0
        return 1.0 - self.opt_allocations / self.unopt_allocations

    @property
    def in_expected_band(self) -> bool:
        lo, hi = self.expected_band
        return lo <= self.instruction_reduction <= hi


def run_case_study(spec, scale=None, top: int = 10,
                   profile_slots: int = 16) -> CaseStudyResult:
    unopt = spec.build("unopt", scale)
    opt = spec.build("opt", scale)

    start = time.perf_counter()
    unopt_vm = VM(unopt)
    unopt_vm.run()
    unopt_seconds = time.perf_counter() - start

    start = time.perf_counter()
    opt_vm = VM(opt)
    opt_vm.run()
    opt_seconds = time.perf_counter() - start

    tracker = CostTracker(slots=profile_slots)
    traced_vm = VM(unopt, tracer=tracker)
    traced_vm.run()
    reports = analyze_cost_benefit(tracker.graph, unopt,
                                   heap=traced_vm.heap)[:top]

    return CaseStudyResult(
        name=spec.name,
        paper_analogue=spec.paper_analogue,
        unopt_instructions=unopt_vm.instr_count,
        opt_instructions=opt_vm.instr_count,
        unopt_seconds=unopt_seconds,
        opt_seconds=opt_seconds,
        unopt_allocations=unopt_vm.heap.total_allocated,
        opt_allocations=opt_vm.heap.total_allocated,
        outputs_match=unopt_vm.stdout() == opt_vm.stdout(),
        expected_band=spec.expected_speedup,
        top_sites=reports,
    )


def run_all_case_studies(scale=None, specs=None):
    if specs is None:
        specs = all_workloads()
    return [run_case_study(spec, scale) for spec in specs]


def format_case_studies(results) -> str:
    lines = [
        "workload        instr-red  time-red  alloc-red  match  "
        "paper analogue",
        "-" * 88,
    ]
    for result in sorted(results, key=lambda r: -r.instruction_reduction):
        lines.append(
            f"{result.name:<15}"
            f"{result.instruction_reduction * 100:>8.1f}% "
            f"{result.time_reduction * 100:>8.1f}% "
            f"{result.allocation_reduction * 100:>9.1f}% "
            f"{'yes' if result.outputs_match else 'NO':>6} "
            f" {result.paper_analogue}")
    return "\n".join(lines)
