"""The MiniJ virtual machine: a three-address-code interpreter.

The VM executes a finalized :class:`~repro.ir.module.Program`.  Every
executed instruction counts one unit of cost (``instr_count``), matching
the paper's cost model ("each instruction is treated as having unit
cost").

Instrumentation
---------------

A *tracer* (normally :class:`repro.profiler.tracker.CostTracker` or one
of the client-analysis trackers) receives a callback for each executed
instruction.  The hook protocol:

===============================  ============================================
hook                             fired for
===============================  ============================================
``trace_instr(i, f)``            const / move / binop / unop / intrinsic /
                                 branch / load_static / store_static /
                                 array_len
``trace_new_object(i, f, o)``    NewObject, after allocation
``trace_new_array(i, f, a)``     NewArray, after allocation
``trace_load_field(i, f, o)``    LoadField, after the read
``trace_store_field(i, f, o,
v)``                             StoreField, after the write
``trace_array_load(i, f, a,
idx)``                           ArrayLoad, after the read
``trace_array_store(i, f, a,
idx, v)``                        ArrayStore, after the write
``trace_call(i, cf, nf, recv)``  Call, after the callee frame is built
``trace_return(i, f)``           Return, before the frame pops
``trace_call_complete(i, f)``    back in the caller, after dest assignment
``trace_native(i, f)``           CallNative, after the native ran
``on_phase(name)``               Sys.phase — fired even when disabled
===============================  ============================================

Tracers expose ``enabled``; when False only ``on_phase`` fires, which is
how phase-restricted tracking (§4.1) is implemented.

Observability
-------------

The VM also reports into a telemetry hub
(:mod:`repro.observability.telemetry` — the process-wide hub unless
one is passed as ``telemetry=``).  When the hub is enabled the loop
emits periodic growth samples (instructions, heap allocations, shadow
population, Gcost size) and a run summary with per-opcode-class
counts; when disabled (the default) the loop does no per-instruction
telemetry work at all — the sampling checkpoint is folded into the
instruction-budget comparison.
"""

from __future__ import annotations

import os

from ..ir import instructions as ins
from ..observability.telemetry import current as _current_telemetry
from .errors import (VMArithmeticError, VMBoundsError, VMError, VMLimitError,
                     VMNullError)
from .frames import Frame
from .heap import Heap
from .natives import lookup_native
from .values import render_value


# -- execution modes --------------------------------------------------------

EXEC_INTERP = "interp"
EXEC_COMPILED = "compiled"
EXEC_MODES = (EXEC_INTERP, EXEC_COMPILED)


def resolve_exec_mode(value=None) -> str:
    """Resolve an exec-mode choice: explicit > $REPRO_EXEC_MODE > compiled."""
    mode = value or os.environ.get("REPRO_EXEC_MODE") or EXEC_COMPILED
    mode = str(mode).strip().lower()
    if mode not in EXEC_MODES:
        raise VMError(f"unknown exec mode {mode!r} "
                      f"(expected one of {', '.join(EXEC_MODES)})")
    return mode


class RunControl:
    """Budget / telemetry / sampling checkpoints for one VM run.

    Both execution tiers fold every cold-path event into the single
    ``count > limit`` comparison the hot loop already performs:
    ``limit`` is the next event of interest — instruction-budget
    exhaustion, a telemetry growth sample, or a sampling-window toggle
    — and :meth:`fire` handles whichever is due and returns the next
    limit.  With telemetry disabled and no sampling schedule this
    degenerates to ``limit == max_steps`` and the loop runs the exact
    same per-instruction work as the bare interpreter.

    The compiled tier stores its per-run bindings (tracer hooks, the
    hoisted-flag refresher) on the same object, so generated templates
    reach everything through one ``rt`` argument.
    """

    __slots__ = ("vm", "stack", "telemetry", "max_steps", "cursor",
                 "_tel_next", "limit", "tracer", "hooks", "traced_now")

    def __init__(self, vm, stack):
        self.vm = vm
        self.stack = stack
        self.telemetry = vm.telemetry
        self.max_steps = vm.max_steps
        # Sampling is only meaningful with a tracker attached; without
        # one the whole run is already "untracked".
        schedule = vm.sampling if vm.tracer is not None else None
        self.cursor = (schedule.cursor(vm.instr_count)
                       if schedule is not None else None)
        self._tel_next = (vm.instr_count + self.telemetry.sample_interval
                          if self.telemetry.enabled else None)
        self.limit = self.max_steps
        vm._run_control = self

    def initial(self, count: int) -> int:
        limit = self.max_steps
        if self._tel_next is not None and self._tel_next < limit:
            limit = self._tel_next
        cursor = self.cursor
        if cursor is not None and cursor.boundary < limit:
            limit = cursor.boundary
        self.limit = limit
        return limit

    @property
    def window_on(self) -> bool:
        cursor = self.cursor
        return cursor is None or cursor.on

    def fire(self, count: int, instr=None, frame=None) -> int:
        """Handle the due event(s) at ``count`` and return the next limit."""
        vm = self.vm
        if count > self.max_steps:
            vm.instr_count = count
            raise VMLimitError(
                f"instruction budget of {self.max_steps} exceeded",
                instr, frame)
        vm.instr_count = count
        tel_next = self._tel_next
        if tel_next is not None and count > tel_next:
            self._tel_next = self.telemetry.vm_sample(vm, self.stack, count)
        cursor = self.cursor
        if cursor is not None and count > cursor.boundary:
            was_on = cursor.on
            while count > cursor.boundary:
                cursor.toggle()
            if cursor.on and not was_on:
                self._rebuild_contexts()
        return self.initial(count)

    def on_phase(self, count: int):
        """Phase entry: reset the sampling cycle (per-phase windows)."""
        cursor = self.cursor
        if cursor is not None:
            was_on = cursor.on
            cursor.phase_reset(count)
            if not was_on:
                self._rebuild_contexts()
            self.initial(count)

    def _rebuild_contexts(self):
        """Recompute the receiver-context chain for the live stack.

        During an untracked burst nobody maintains ``frame.g``: hooks
        are off and the dispatch loops skip the per-call bookkeeping so
        bursts run at genuinely untraced speed.  When a window opens,
        the chain is reconstructed from the activations themselves —
        each frame's ``this`` register still holds the receiver whose
        allocation site extends the caller's context — so tracked
        windows see exactly the context-annotated node identities an
        eagerly-maintained chain would have produced.
        """
        tracer = self.vm.tracer
        if tracer is None:
            return
        from ..profiler.context import extend_context
        slots = getattr(tracer, "slots", 0)
        stack = self.stack
        if not stack:
            return
        g = stack[0].g
        for frame in stack[1:]:
            recv = frame.regs.get("this")
            if recv is not None:
                g = extend_context(g, recv.site)
            frame.g = g
            frame.dctx = (g % slots) if slots else 0

    def finish(self, count: int):
        cursor = self.cursor
        if cursor is not None:
            cursor.finish(count)


def _java_div(a: int, b: int) -> int:
    """Java-style integer division (truncation toward zero)."""
    q = a // b
    if q < 0 and q * b != a:
        q += 1
    return q


def _java_rem(a: int, b: int) -> int:
    """Java-style remainder: a - (a/b)*b, sign follows the dividend."""
    return a - _java_div(a, b) * b


def _string_hash(s: str) -> int:
    """Deterministic Java-compatible string hash."""
    h = 0
    for ch in s:
        h = (31 * h + ord(ch)) & 0xFFFFFFFF
    # Interpret as signed 32-bit like Java.
    return h - 0x100000000 if h >= 0x80000000 else h


class VM:
    """Interpreter for finalized MiniJ programs."""

    def __init__(self, program, tracer=None, max_steps: int = 2_000_000_000,
                 telemetry=None, exec_mode=None, sampling=None):
        if not program.finalized:
            raise VMError("program must be finalized before execution")
        self.program = program
        self.tracer = tracer
        self.max_steps = max_steps
        #: Execution tier: "compiled" (template-compiled dispatch, the
        #: default) or "interp" (the reference loop below).  Programs
        #: with shapes the templates do not cover fall back to interp
        #: transparently; ``exec_tier`` records what actually ran.
        self.exec_mode = resolve_exec_mode(exec_mode)
        self.exec_tier = None
        #: Optional burst-sampling schedule
        #: (:class:`repro.profiler.sampling.SampleSchedule`); only
        #: meaningful when a tracer is attached.
        self.sampling = sampling
        self._run_control = None
        # Observability hub (the process-wide one unless given).  The
        # default is the no-op hub with ``enabled=False``; the dispatch
        # loop guards on that one attribute, outside the loop.
        self.telemetry = (telemetry if telemetry is not None
                          else _current_telemetry())
        self.heap = Heap()
        self._statics = {}        # (owner class, field) -> value
        self.output = []          # program output chunks (Sys.print*)
        self.instr_count = 0      # executed instruction instances (I)
        self.phase_counts = {}    # phase name -> instruction count
        self.current_phase = "main"
        self._phase_started_at = 0
        self.result = None
        self.finished = False

    # -- phases ---------------------------------------------------------------

    def enter_phase(self, name: str):
        """Close the current phase's instruction window and open ``name``."""
        count = self.instr_count - self._phase_started_at
        self.phase_counts[self.current_phase] = (
            self.phase_counts.get(self.current_phase, 0) + count)
        self.current_phase = name
        self._phase_started_at = self.instr_count
        if self.tracer is not None:
            self.tracer.on_phase(name)
        control = self._run_control
        if control is not None:
            control.on_phase(self.instr_count)

    def _close_phases(self):
        count = self.instr_count - self._phase_started_at
        self.phase_counts[self.current_phase] = (
            self.phase_counts.get(self.current_phase, 0) + count)
        self._phase_started_at = self.instr_count

    # -- output helpers ----------------------------------------------------------

    def stdout(self) -> str:
        return "".join(self.output)

    # -- main loop -----------------------------------------------------------------

    def run(self) -> "VM":
        """Execute from the entry method until it returns.

        Containment contract: when execution dies with a
        :class:`VMError` (including :class:`VMLimitError`),
        ``instr_count`` reflects every executed instruction and the
        phase windows are closed before the error escapes — the
        attached tracer's graph-so-far remains a valid partial
        profile, which the supervised profiling runtime salvages
        instead of discarding the shard.

        Dispatches to the compiled tier when ``exec_mode`` allows and
        the program's shapes are supported; otherwise runs the
        reference interpreter loop.  Both tiers honour the same
        containment contract and produce identical ``instr_count``,
        output, phase windows, and tracker graphs (with sampling off).
        """
        try:
            if self.exec_mode == EXEC_COMPILED:
                from .compiled import run_compiled
                if run_compiled(self):
                    return self
            return self._run_interp()
        except VMError as error:
            # Cold path: the error is already escaping.  Stamp the
            # stream (and the flight-recorder ring tapping it) with
            # what died where, so a postmortem dump is self-describing.
            telemetry = self.telemetry
            if telemetry.enabled:
                telemetry.event("vm.error",
                                type=type(error).__name__,
                                error=str(error),
                                where=error.where,
                                instructions=self.instr_count,
                                phase=self.current_phase)
            raise

    def sampling_stats(self):
        """Sampling meta of the last run (schedule + exact window
        accounting), or None when no schedule was active."""
        control = self._run_control
        if control is None or control.cursor is None:
            return None
        return control.cursor.stats(self.instr_count)

    def _run_interp(self) -> "VM":
        entry = self.program.entry
        frame = Frame(entry)
        stack = [frame]
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.on_entry_frame(frame)
        count = self.instr_count
        # Budget exhaustion, telemetry growth samples, and sampling-
        # window toggles share one checkpoint: ``limit`` is the next
        # event of interest, handled on the cold path by RunControl.
        control = RunControl(self, stack)
        telemetry = self.telemetry
        limit = control.initial(count)
        # Tracking can only toggle inside a native (Sys.phase) or at a
        # sampling-window boundary (a checkpoint), so the flag is
        # hoisted out of the dispatch loop and refreshed at the places
        # that can change it.
        traced = tracer is not None and tracer.enabled and control.window_on
        # Calls made inside a window while the tracker itself is phase-
        # disabled still extend the receiver-context chain (trace_call
        # does not fire).  Untracked bursts skip the bookkeeping
        # entirely; RunControl rebuilds the chain when a window opens.
        track_ctx = tracer is not None and control.cursor is not None
        if track_ctx:
            from ..profiler.context import extend_context
            ctx_slots = getattr(tracer, "slots", 0)

        try:
            while stack:
                frame = stack[-1]
                code = frame.method.body
                regs = frame.regs
                pc = frame.pc
                instr = code[pc]
                op = instr.op
                count += 1
                if count > limit:
                    limit = control.fire(count, instr, frame)
                    traced = (tracer is not None and tracer.enabled
                              and control.window_on)

                if op == ins.OP_BINOP:
                    regs[instr.dest] = self._binop(instr, regs, frame)
                    frame.pc = pc + 1
                    if traced:
                        tracer.trace_instr(instr, frame)

                elif op == ins.OP_CONST:
                    regs[instr.dest] = instr.value
                    frame.pc = pc + 1
                    if traced:
                        tracer.trace_instr(instr, frame)

                elif op == ins.OP_MOVE:
                    regs[instr.dest] = regs[instr.src]
                    frame.pc = pc + 1
                    if traced:
                        tracer.trace_instr(instr, frame)

                elif op == ins.OP_BRANCH:
                    frame.pc = (instr.then_index if regs[instr.cond]
                                else instr.else_index)
                    if traced:
                        tracer.trace_instr(instr, frame)

                elif op == ins.OP_JUMP:
                    frame.pc = instr.target_index

                elif op == ins.OP_LOAD_FIELD:
                    obj = regs[instr.obj]
                    if obj is None:
                        self.instr_count = count
                        raise VMNullError(
                            f"null dereference reading .{instr.field}",
                            instr, frame)
                    regs[instr.dest] = obj.fields[instr.field]
                    frame.pc = pc + 1
                    if traced:
                        tracer.trace_load_field(instr, frame, obj)

                elif op == ins.OP_STORE_FIELD:
                    obj = regs[instr.obj]
                    if obj is None:
                        self.instr_count = count
                        raise VMNullError(
                            f"null dereference writing .{instr.field}",
                            instr, frame)
                    value = regs[instr.src]
                    obj.fields[instr.field] = value
                    frame.pc = pc + 1
                    if traced:
                        tracer.trace_store_field(instr, frame, obj, value)

                elif op == ins.OP_ARRAY_LOAD:
                    arr = regs[instr.arr]
                    if arr is None:
                        self.instr_count = count
                        raise VMNullError("null array load", instr, frame)
                    idx = regs[instr.idx]
                    elems = arr.elems
                    if idx < 0 or idx >= len(elems):
                        self.instr_count = count
                        raise VMBoundsError(
                            f"index {idx} out of bounds for length {len(elems)}",
                            instr, frame)
                    regs[instr.dest] = elems[idx]
                    frame.pc = pc + 1
                    if traced:
                        tracer.trace_array_load(instr, frame, arr, idx)

                elif op == ins.OP_ARRAY_STORE:
                    arr = regs[instr.arr]
                    if arr is None:
                        self.instr_count = count
                        raise VMNullError("null array store", instr, frame)
                    idx = regs[instr.idx]
                    elems = arr.elems
                    if idx < 0 or idx >= len(elems):
                        self.instr_count = count
                        raise VMBoundsError(
                            f"index {idx} out of bounds for length {len(elems)}",
                            instr, frame)
                    value = regs[instr.src]
                    elems[idx] = value
                    frame.pc = pc + 1
                    if traced:
                        tracer.trace_array_store(instr, frame, arr, idx, value)

                elif op == ins.OP_ARRAY_LEN:
                    arr = regs[instr.arr]
                    if arr is None:
                        self.instr_count = count
                        raise VMNullError("null array length", instr, frame)
                    regs[instr.dest] = len(arr.elems)
                    frame.pc = pc + 1
                    if traced:
                        tracer.trace_instr(instr, frame)

                elif op == ins.OP_CALL:
                    frame.pc = pc + 1  # return continues after the call
                    callee_frame, recv_obj = self._make_callee_frame(
                        instr, frame, count)
                    stack.append(callee_frame)
                    if traced:
                        tracer.trace_call(instr, frame, callee_frame, recv_obj)
                    elif track_ctx and control.window_on:
                        g = (extend_context(frame.g, recv_obj.site)
                             if recv_obj is not None else frame.g)
                        callee_frame.g = g
                        callee_frame.dctx = (g % ctx_slots) if ctx_slots else 0

                elif op == ins.OP_RETURN:
                    value = regs[instr.src] if instr.src is not None else None
                    if traced:
                        tracer.trace_return(instr, frame)
                    stack.pop()
                    if stack:
                        caller = stack[-1]
                        call_instr = frame.call_instr
                        if call_instr.dest is not None:
                            caller.regs[call_instr.dest] = value
                        if traced:
                            tracer.trace_call_complete(call_instr, caller)
                    else:
                        self.result = value

                elif op == ins.OP_UNOP:
                    src = regs[instr.src]
                    regs[instr.dest] = (-src if instr.unop == ins.UN_NEG
                                        else not src)
                    frame.pc = pc + 1
                    if traced:
                        tracer.trace_instr(instr, frame)

                elif op == ins.OP_INTRINSIC:
                    regs[instr.dest] = self._intrinsic(instr, regs, frame, count)
                    frame.pc = pc + 1
                    if traced:
                        tracer.trace_instr(instr, frame)

                elif op == ins.OP_NEW_OBJECT:
                    cls = self.program.classes[instr.class_name]
                    obj = self.heap.new_object(cls, instr.iid)
                    regs[instr.dest] = obj
                    frame.pc = pc + 1
                    if traced:
                        tracer.trace_new_object(instr, frame, obj)

                elif op == ins.OP_NEW_ARRAY:
                    length = regs[instr.size]
                    if length < 0:
                        self.instr_count = count
                        raise VMBoundsError(
                            f"negative array size {length}", instr, frame)
                    arr = self.heap.new_array(instr.elem_type, instr.iid, length)
                    regs[instr.dest] = arr
                    frame.pc = pc + 1
                    if traced:
                        tracer.trace_new_array(instr, frame, arr)

                elif op == ins.OP_LOAD_STATIC:
                    regs[instr.dest] = self._static_slot(
                        instr.class_name, instr.field)
                    frame.pc = pc + 1
                    if traced:
                        tracer.trace_instr(instr, frame)

                elif op == ins.OP_STORE_STATIC:
                    self._set_static_slot(instr.class_name, instr.field,
                                          regs[instr.src])
                    frame.pc = pc + 1
                    if traced:
                        tracer.trace_instr(instr, frame)

                elif op == ins.OP_CALL_NATIVE:
                    self.instr_count = count  # natives may inspect the count
                    native = instr.resolved_native
                    if native is None:
                        # Not resolvable at finalize (unknown name): raise
                        # the usual execution-time error.
                        native = lookup_native(instr.native)
                    args = [regs[a] for a in instr.args]
                    result = native(self, args)
                    if instr.dest is not None:
                        regs[instr.dest] = result
                    frame.pc = pc + 1
                    # Re-check: the native may have toggled tracking
                    # (phase) or moved a sampling boundary (phase reset).
                    limit = control.limit
                    traced = (tracer is not None and tracer.enabled
                              and control.window_on)
                    if traced:
                        tracer.trace_native(instr, frame)

                else:  # pragma: no cover - defensive
                    self.instr_count = count
                    raise VMError(f"unknown opcode {op}", instr, frame)

        except VMError:
            # Fault containment (docs/RESILIENCE.md): a VMError must
            # leave the VM in a coherent partial state -- instruction
            # count current and phase windows closed -- so a supervised
            # worker can salvage the tracker's graph-so-far instead of
            # discarding the shard.
            self.instr_count = count
            control.finish(count)
            self._close_phases()
            raise
        self.instr_count = count
        control.finish(count)
        self._close_phases()
        if telemetry.enabled:
            telemetry.vm_finish(self)
        self.finished = True
        self.exec_tier = EXEC_INTERP
        return self

    # -- helpers ----------------------------------------------------------------

    def _binop(self, instr, regs, frame):
        a = regs[instr.lhs]
        b = regs[instr.rhs]
        op = instr.binop
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "<":
            return a < b
        if op == "<=":
            return a <= b
        if op == ">":
            return a > b
        if op == ">=":
            return a >= b
        if op == "==":
            return a is b if _is_ref(a) or _is_ref(b) else a == b
        if op == "!=":
            return a is not b if _is_ref(a) or _is_ref(b) else a != b
        if op == "/":
            if b == 0:
                raise VMArithmeticError("division by zero", instr, frame)
            return _java_div(a, b)
        if op == "%":
            if b == 0:
                raise VMArithmeticError("modulo by zero", instr, frame)
            return _java_rem(a, b)
        if op == ins.BIN_CONCAT:
            return _as_str(a) + _as_str(b)
        if op == "&":
            return (a and b) if isinstance(a, bool) else (a & b)
        if op == "|":
            return (a or b) if isinstance(a, bool) else (a | b)
        if op == "^":
            return (a != b) if isinstance(a, bool) else (a ^ b)
        if op == "<<":
            return a << (b & 31)
        if op == ">>":
            return a >> (b & 31)
        raise VMError(f"unknown binary operator {op!r}", instr, frame)

    def _intrinsic(self, instr, regs, frame, count):
        args = instr.args
        intr = instr.intr
        if intr == ins.INTR_SLEN:
            s = regs[args[0]]
            if s is None:
                self.instr_count = count
                raise VMNullError("length() on null string", instr, frame)
            return len(s)
        if intr == ins.INTR_SCHARAT:
            s = regs[args[0]]
            if s is None:
                self.instr_count = count
                raise VMNullError("charAt() on null string", instr, frame)
            i = regs[args[1]]
            if i < 0 or i >= len(s):
                self.instr_count = count
                raise VMBoundsError(
                    f"charAt index {i} out of bounds for length {len(s)}",
                    instr, frame)
            return ord(s[i])
        if intr == ins.INTR_SEQ:
            return regs[args[0]] == regs[args[1]]
        if intr == ins.INTR_SHASH:
            s = regs[args[0]]
            if s is None:
                self.instr_count = count
                raise VMNullError("hash() on null string", instr, frame)
            return _string_hash(s)
        if intr == ins.INTR_ITOS:
            return str(regs[args[0]])
        if intr == ins.INTR_CHR:
            return chr(regs[args[0]] & 0x10FFFF)
        if intr == ins.INTR_SCMP:
            a = regs[args[0]]
            b = regs[args[1]]
            if a is None or b is None:
                self.instr_count = count
                raise VMNullError("compare() on null string", instr, frame)
            return -1 if a < b else (1 if a > b else 0)
        raise VMError(f"unknown intrinsic {intr!r}", instr, frame)

    def _make_callee_frame(self, instr, frame, count):
        regs = frame.regs
        recv_obj = None
        if instr.kind == ins.CALL_VIRTUAL:
            recv_obj = regs[instr.recv]
            if recv_obj is None:
                self.instr_count = count
                raise VMNullError(
                    f"null receiver calling .{instr.method_name}()",
                    instr, frame)
            target = recv_obj.cls.vtable.get(instr.method_name)
            if target is None:
                self.instr_count = count
                raise VMError(
                    f"no method {instr.method_name} on "
                    f"{recv_obj.cls.name}", instr, frame)
        else:
            target = instr.resolved
            if instr.recv is not None:
                recv_obj = regs[instr.recv]
                if recv_obj is None:
                    self.instr_count = count
                    raise VMNullError(
                        f"null receiver calling .{instr.method_name}()",
                        instr, frame)

        callee = Frame(target, dest=instr.dest, call_instr=instr)
        callee_regs = callee.regs
        if recv_obj is not None:
            callee_regs["this"] = recv_obj
        for (name, _), arg_reg in zip(target.params, instr.args):
            callee_regs[name] = regs[arg_reg]
        return callee, recv_obj

    # -- static fields ---------------------------------------------------------

    def _static_slot(self, class_name: str, field: str):
        owner = self._static_owner(class_name, field)
        key = (owner, field)
        statics = self._statics
        if key not in statics:
            fd = self.program.classes[owner].static_fields[field]
            from .values import default_value
            statics[key] = default_value(fd.type)
        return statics[key]

    def _set_static_slot(self, class_name: str, field: str, value):
        owner = self._static_owner(class_name, field)
        self._statics[(owner, field)] = value

    def _static_owner(self, class_name: str, field: str) -> str:
        """Resolve which class in the hierarchy declares the static."""
        cls = self.program.classes.get(class_name)
        while cls is not None:
            if field in cls.static_fields:
                return cls.name
            cls = cls.superclass
        raise VMError(f"unknown static field {class_name}.{field}")


def _is_ref(value) -> bool:
    """True for heap references (objects/arrays); strings are values."""
    return value is not None and not isinstance(value, (int, str))


def _as_str(value) -> str:
    """Java-style implicit conversion for string concatenation."""
    if isinstance(value, str):
        return value
    return render_value(value)


def run_program(program, tracer=None, max_steps: int = 2_000_000_000,
                telemetry=None, exec_mode=None, sampling=None) -> VM:
    """Convenience: build a VM, run it, and return it."""
    vm = VM(program, tracer=tracer, max_steps=max_steps,
            telemetry=telemetry, exec_mode=exec_mode, sampling=sampling)
    vm.run()
    return vm
