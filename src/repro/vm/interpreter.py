"""The MiniJ virtual machine: a three-address-code interpreter.

The VM executes a finalized :class:`~repro.ir.module.Program`.  Every
executed instruction counts one unit of cost (``instr_count``), matching
the paper's cost model ("each instruction is treated as having unit
cost").

Instrumentation
---------------

A *tracer* (normally :class:`repro.profiler.tracker.CostTracker` or one
of the client-analysis trackers) receives a callback for each executed
instruction.  The hook protocol:

===============================  ============================================
hook                             fired for
===============================  ============================================
``trace_instr(i, f)``            const / move / binop / unop / intrinsic /
                                 branch / load_static / store_static /
                                 array_len
``trace_new_object(i, f, o)``    NewObject, after allocation
``trace_new_array(i, f, a)``     NewArray, after allocation
``trace_load_field(i, f, o)``    LoadField, after the read
``trace_store_field(i, f, o,
v)``                             StoreField, after the write
``trace_array_load(i, f, a,
idx)``                           ArrayLoad, after the read
``trace_array_store(i, f, a,
idx, v)``                        ArrayStore, after the write
``trace_call(i, cf, nf, recv)``  Call, after the callee frame is built
``trace_return(i, f)``           Return, before the frame pops
``trace_call_complete(i, f)``    back in the caller, after dest assignment
``trace_native(i, f)``           CallNative, after the native ran
``on_phase(name)``               Sys.phase — fired even when disabled
===============================  ============================================

Tracers expose ``enabled``; when False only ``on_phase`` fires, which is
how phase-restricted tracking (§4.1) is implemented.

Observability
-------------

The VM also reports into a telemetry hub
(:mod:`repro.observability.telemetry` — the process-wide hub unless
one is passed as ``telemetry=``).  When the hub is enabled the loop
emits periodic growth samples (instructions, heap allocations, shadow
population, Gcost size) and a run summary with per-opcode-class
counts; when disabled (the default) the loop does no per-instruction
telemetry work at all — the sampling checkpoint is folded into the
instruction-budget comparison.
"""

from __future__ import annotations

from ..ir import instructions as ins
from ..observability.telemetry import current as _current_telemetry
from .errors import (VMArithmeticError, VMBoundsError, VMError, VMLimitError,
                     VMNullError)
from .frames import Frame
from .heap import Heap
from .natives import lookup_native
from .values import render_value


def _java_div(a: int, b: int) -> int:
    """Java-style integer division (truncation toward zero)."""
    q = a // b
    if q < 0 and q * b != a:
        q += 1
    return q


def _java_rem(a: int, b: int) -> int:
    """Java-style remainder: a - (a/b)*b, sign follows the dividend."""
    return a - _java_div(a, b) * b


def _string_hash(s: str) -> int:
    """Deterministic Java-compatible string hash."""
    h = 0
    for ch in s:
        h = (31 * h + ord(ch)) & 0xFFFFFFFF
    # Interpret as signed 32-bit like Java.
    return h - 0x100000000 if h >= 0x80000000 else h


class VM:
    """Interpreter for finalized MiniJ programs."""

    def __init__(self, program, tracer=None, max_steps: int = 2_000_000_000,
                 telemetry=None):
        if not program.finalized:
            raise VMError("program must be finalized before execution")
        self.program = program
        self.tracer = tracer
        self.max_steps = max_steps
        # Observability hub (the process-wide one unless given).  The
        # default is the no-op hub with ``enabled=False``; the dispatch
        # loop guards on that one attribute, outside the loop.
        self.telemetry = (telemetry if telemetry is not None
                          else _current_telemetry())
        self.heap = Heap()
        self._statics = {}        # (owner class, field) -> value
        self.output = []          # program output chunks (Sys.print*)
        self.instr_count = 0      # executed instruction instances (I)
        self.phase_counts = {}    # phase name -> instruction count
        self.current_phase = "main"
        self._phase_started_at = 0
        self.result = None
        self.finished = False

    # -- phases ---------------------------------------------------------------

    def enter_phase(self, name: str):
        """Close the current phase's instruction window and open ``name``."""
        count = self.instr_count - self._phase_started_at
        self.phase_counts[self.current_phase] = (
            self.phase_counts.get(self.current_phase, 0) + count)
        self.current_phase = name
        self._phase_started_at = self.instr_count
        if self.tracer is not None:
            self.tracer.on_phase(name)

    def _close_phases(self):
        count = self.instr_count - self._phase_started_at
        self.phase_counts[self.current_phase] = (
            self.phase_counts.get(self.current_phase, 0) + count)
        self._phase_started_at = self.instr_count

    # -- output helpers ----------------------------------------------------------

    def stdout(self) -> str:
        return "".join(self.output)

    # -- main loop -----------------------------------------------------------------

    def run(self) -> "VM":
        """Execute from the entry method until it returns.

        Containment contract: when execution dies with a
        :class:`VMError` (including :class:`VMLimitError`),
        ``instr_count`` reflects every executed instruction and the
        phase windows are closed before the error escapes — the
        attached tracer's graph-so-far remains a valid partial
        profile, which the supervised profiling runtime salvages
        instead of discarding the shard.
        """
        entry = self.program.entry
        frame = Frame(entry)
        stack = [frame]
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.on_entry_frame(frame)
        max_steps = self.max_steps
        count = self.instr_count
        # Tracking can only toggle inside a native (Sys.phase), so the
        # flag is hoisted out of the dispatch loop and refreshed at the
        # one opcode that can change it.
        traced = tracer is not None and tracer.enabled
        # Telemetry folds its sampling checkpoint into the instruction-
        # budget comparison the loop already performs: ``limit`` is the
        # next event of interest (budget exhaustion or growth sample),
        # so with telemetry disabled the dispatch loop runs the exact
        # same per-instruction work as the bare interpreter.
        telemetry = self.telemetry
        if telemetry.enabled:
            limit = min(max_steps, count + telemetry.sample_interval)
        else:
            limit = max_steps

        try:
            while stack:
                frame = stack[-1]
                code = frame.method.body
                regs = frame.regs
                pc = frame.pc
                instr = code[pc]
                op = instr.op
                count += 1
                if count > limit:
                    if count > max_steps:
                        self.instr_count = count
                        raise VMLimitError(
                            f"instruction budget of {max_steps} exceeded",
                            instr, frame)
                    # Telemetry growth sample (only reachable when enabled:
                    # a disabled hub leaves limit == max_steps).
                    self.instr_count = count
                    limit = min(max_steps,
                                telemetry.vm_sample(self, stack, count))

                if op == ins.OP_BINOP:
                    regs[instr.dest] = self._binop(instr, regs, frame)
                    frame.pc = pc + 1
                    if traced:
                        tracer.trace_instr(instr, frame)

                elif op == ins.OP_CONST:
                    regs[instr.dest] = instr.value
                    frame.pc = pc + 1
                    if traced:
                        tracer.trace_instr(instr, frame)

                elif op == ins.OP_MOVE:
                    regs[instr.dest] = regs[instr.src]
                    frame.pc = pc + 1
                    if traced:
                        tracer.trace_instr(instr, frame)

                elif op == ins.OP_BRANCH:
                    frame.pc = (instr.then_index if regs[instr.cond]
                                else instr.else_index)
                    if traced:
                        tracer.trace_instr(instr, frame)

                elif op == ins.OP_JUMP:
                    frame.pc = instr.target_index

                elif op == ins.OP_LOAD_FIELD:
                    obj = regs[instr.obj]
                    if obj is None:
                        self.instr_count = count
                        raise VMNullError(
                            f"null dereference reading .{instr.field}",
                            instr, frame)
                    regs[instr.dest] = obj.fields[instr.field]
                    frame.pc = pc + 1
                    if traced:
                        tracer.trace_load_field(instr, frame, obj)

                elif op == ins.OP_STORE_FIELD:
                    obj = regs[instr.obj]
                    if obj is None:
                        self.instr_count = count
                        raise VMNullError(
                            f"null dereference writing .{instr.field}",
                            instr, frame)
                    value = regs[instr.src]
                    obj.fields[instr.field] = value
                    frame.pc = pc + 1
                    if traced:
                        tracer.trace_store_field(instr, frame, obj, value)

                elif op == ins.OP_ARRAY_LOAD:
                    arr = regs[instr.arr]
                    if arr is None:
                        self.instr_count = count
                        raise VMNullError("null array load", instr, frame)
                    idx = regs[instr.idx]
                    elems = arr.elems
                    if idx < 0 or idx >= len(elems):
                        self.instr_count = count
                        raise VMBoundsError(
                            f"index {idx} out of bounds for length {len(elems)}",
                            instr, frame)
                    regs[instr.dest] = elems[idx]
                    frame.pc = pc + 1
                    if traced:
                        tracer.trace_array_load(instr, frame, arr, idx)

                elif op == ins.OP_ARRAY_STORE:
                    arr = regs[instr.arr]
                    if arr is None:
                        self.instr_count = count
                        raise VMNullError("null array store", instr, frame)
                    idx = regs[instr.idx]
                    elems = arr.elems
                    if idx < 0 or idx >= len(elems):
                        self.instr_count = count
                        raise VMBoundsError(
                            f"index {idx} out of bounds for length {len(elems)}",
                            instr, frame)
                    value = regs[instr.src]
                    elems[idx] = value
                    frame.pc = pc + 1
                    if traced:
                        tracer.trace_array_store(instr, frame, arr, idx, value)

                elif op == ins.OP_ARRAY_LEN:
                    arr = regs[instr.arr]
                    if arr is None:
                        self.instr_count = count
                        raise VMNullError("null array length", instr, frame)
                    regs[instr.dest] = len(arr.elems)
                    frame.pc = pc + 1
                    if traced:
                        tracer.trace_instr(instr, frame)

                elif op == ins.OP_CALL:
                    frame.pc = pc + 1  # return continues after the call
                    callee_frame, recv_obj = self._make_callee_frame(
                        instr, frame, count)
                    stack.append(callee_frame)
                    if traced:
                        tracer.trace_call(instr, frame, callee_frame, recv_obj)

                elif op == ins.OP_RETURN:
                    value = regs[instr.src] if instr.src is not None else None
                    if traced:
                        tracer.trace_return(instr, frame)
                    stack.pop()
                    if stack:
                        caller = stack[-1]
                        call_instr = frame.call_instr
                        if call_instr.dest is not None:
                            caller.regs[call_instr.dest] = value
                        if traced:
                            tracer.trace_call_complete(call_instr, caller)
                    else:
                        self.result = value

                elif op == ins.OP_UNOP:
                    src = regs[instr.src]
                    regs[instr.dest] = (-src if instr.unop == ins.UN_NEG
                                        else not src)
                    frame.pc = pc + 1
                    if traced:
                        tracer.trace_instr(instr, frame)

                elif op == ins.OP_INTRINSIC:
                    regs[instr.dest] = self._intrinsic(instr, regs, frame, count)
                    frame.pc = pc + 1
                    if traced:
                        tracer.trace_instr(instr, frame)

                elif op == ins.OP_NEW_OBJECT:
                    cls = self.program.classes[instr.class_name]
                    obj = self.heap.new_object(cls, instr.iid)
                    regs[instr.dest] = obj
                    frame.pc = pc + 1
                    if traced:
                        tracer.trace_new_object(instr, frame, obj)

                elif op == ins.OP_NEW_ARRAY:
                    length = regs[instr.size]
                    if length < 0:
                        self.instr_count = count
                        raise VMBoundsError(
                            f"negative array size {length}", instr, frame)
                    arr = self.heap.new_array(instr.elem_type, instr.iid, length)
                    regs[instr.dest] = arr
                    frame.pc = pc + 1
                    if traced:
                        tracer.trace_new_array(instr, frame, arr)

                elif op == ins.OP_LOAD_STATIC:
                    regs[instr.dest] = self._static_slot(
                        instr.class_name, instr.field)
                    frame.pc = pc + 1
                    if traced:
                        tracer.trace_instr(instr, frame)

                elif op == ins.OP_STORE_STATIC:
                    self._set_static_slot(instr.class_name, instr.field,
                                          regs[instr.src])
                    frame.pc = pc + 1
                    if traced:
                        tracer.trace_instr(instr, frame)

                elif op == ins.OP_CALL_NATIVE:
                    self.instr_count = count  # natives may inspect the count
                    native = instr.resolved_native
                    if native is None:
                        # Not resolvable at finalize (unknown name): raise
                        # the usual execution-time error.
                        native = lookup_native(instr.native)
                    args = [regs[a] for a in instr.args]
                    result = native(self, args)
                    if instr.dest is not None:
                        regs[instr.dest] = result
                    frame.pc = pc + 1
                    # Re-check: the native may have toggled tracking (phase).
                    traced = tracer is not None and tracer.enabled
                    if traced:
                        tracer.trace_native(instr, frame)

                else:  # pragma: no cover - defensive
                    self.instr_count = count
                    raise VMError(f"unknown opcode {op}", instr, frame)

        except VMError:
            # Fault containment (docs/RESILIENCE.md): a VMError must
            # leave the VM in a coherent partial state -- instruction
            # count current and phase windows closed -- so a supervised
            # worker can salvage the tracker's graph-so-far instead of
            # discarding the shard.
            self.instr_count = count
            self._close_phases()
            raise
        self.instr_count = count
        self._close_phases()
        if telemetry.enabled:
            telemetry.vm_finish(self)
        self.finished = True
        return self

    # -- helpers ----------------------------------------------------------------

    def _binop(self, instr, regs, frame):
        a = regs[instr.lhs]
        b = regs[instr.rhs]
        op = instr.binop
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "<":
            return a < b
        if op == "<=":
            return a <= b
        if op == ">":
            return a > b
        if op == ">=":
            return a >= b
        if op == "==":
            return a is b if _is_ref(a) or _is_ref(b) else a == b
        if op == "!=":
            return a is not b if _is_ref(a) or _is_ref(b) else a != b
        if op == "/":
            if b == 0:
                raise VMArithmeticError("division by zero", instr, frame)
            return _java_div(a, b)
        if op == "%":
            if b == 0:
                raise VMArithmeticError("modulo by zero", instr, frame)
            return _java_rem(a, b)
        if op == ins.BIN_CONCAT:
            return _as_str(a) + _as_str(b)
        if op == "&":
            return (a and b) if isinstance(a, bool) else (a & b)
        if op == "|":
            return (a or b) if isinstance(a, bool) else (a | b)
        if op == "^":
            return (a != b) if isinstance(a, bool) else (a ^ b)
        if op == "<<":
            return a << (b & 31)
        if op == ">>":
            return a >> (b & 31)
        raise VMError(f"unknown binary operator {op!r}", instr, frame)

    def _intrinsic(self, instr, regs, frame, count):
        args = instr.args
        intr = instr.intr
        if intr == ins.INTR_SLEN:
            s = regs[args[0]]
            if s is None:
                self.instr_count = count
                raise VMNullError("length() on null string", instr, frame)
            return len(s)
        if intr == ins.INTR_SCHARAT:
            s = regs[args[0]]
            if s is None:
                self.instr_count = count
                raise VMNullError("charAt() on null string", instr, frame)
            i = regs[args[1]]
            if i < 0 or i >= len(s):
                self.instr_count = count
                raise VMBoundsError(
                    f"charAt index {i} out of bounds for length {len(s)}",
                    instr, frame)
            return ord(s[i])
        if intr == ins.INTR_SEQ:
            return regs[args[0]] == regs[args[1]]
        if intr == ins.INTR_SHASH:
            s = regs[args[0]]
            if s is None:
                self.instr_count = count
                raise VMNullError("hash() on null string", instr, frame)
            return _string_hash(s)
        if intr == ins.INTR_ITOS:
            return str(regs[args[0]])
        if intr == ins.INTR_CHR:
            return chr(regs[args[0]] & 0x10FFFF)
        if intr == ins.INTR_SCMP:
            a = regs[args[0]]
            b = regs[args[1]]
            if a is None or b is None:
                self.instr_count = count
                raise VMNullError("compare() on null string", instr, frame)
            return -1 if a < b else (1 if a > b else 0)
        raise VMError(f"unknown intrinsic {intr!r}", instr, frame)

    def _make_callee_frame(self, instr, frame, count):
        regs = frame.regs
        recv_obj = None
        if instr.kind == ins.CALL_VIRTUAL:
            recv_obj = regs[instr.recv]
            if recv_obj is None:
                self.instr_count = count
                raise VMNullError(
                    f"null receiver calling .{instr.method_name}()",
                    instr, frame)
            target = recv_obj.cls.vtable.get(instr.method_name)
            if target is None:
                self.instr_count = count
                raise VMError(
                    f"no method {instr.method_name} on "
                    f"{recv_obj.cls.name}", instr, frame)
        else:
            target = instr.resolved
            if instr.recv is not None:
                recv_obj = regs[instr.recv]
                if recv_obj is None:
                    self.instr_count = count
                    raise VMNullError(
                        f"null receiver calling .{instr.method_name}()",
                        instr, frame)

        callee = Frame(target, dest=instr.dest, call_instr=instr)
        callee_regs = callee.regs
        if recv_obj is not None:
            callee_regs["this"] = recv_obj
        for (name, _), arg_reg in zip(target.params, instr.args):
            callee_regs[name] = regs[arg_reg]
        return callee, recv_obj

    # -- static fields ---------------------------------------------------------

    def _static_slot(self, class_name: str, field: str):
        owner = self._static_owner(class_name, field)
        key = (owner, field)
        statics = self._statics
        if key not in statics:
            fd = self.program.classes[owner].static_fields[field]
            from .values import default_value
            statics[key] = default_value(fd.type)
        return statics[key]

    def _set_static_slot(self, class_name: str, field: str, value):
        owner = self._static_owner(class_name, field)
        self._statics[(owner, field)] = value

    def _static_owner(self, class_name: str, field: str) -> str:
        """Resolve which class in the hierarchy declares the static."""
        cls = self.program.classes.get(class_name)
        while cls is not None:
            if field in cls.static_fields:
                return cls.name
            cls = cls.superclass
        raise VMError(f"unknown static field {class_name}.{field}")


def _is_ref(value) -> bool:
    """True for heap references (objects/arrays); strings are values."""
    return value is not None and not isinstance(value, (int, str))


def _as_str(value) -> str:
    """Java-style implicit conversion for string concatenation."""
    if isinstance(value, str):
        return value
    return render_value(value)


def run_program(program, tracer=None, max_steps: int = 2_000_000_000,
                telemetry=None) -> VM:
    """Convenience: build a VM, run it, and return it."""
    vm = VM(program, tracer=tracer, max_steps=max_steps,
            telemetry=telemetry)
    vm.run()
    return vm
