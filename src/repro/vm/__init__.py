"""MiniJ virtual machine: heap, frames, natives, interpreter.

Execution tiers: the reference interpreter loop (``exec_mode="interp"``)
and the template-compiled dispatch tier (``exec_mode="compiled"``, the
default — see :mod:`repro.vm.compiled`).
"""

from .errors import (VMArithmeticError, VMBoundsError, VMError, VMLimitError,
                     VMNullError, VMTypestateError)
from .frames import Frame
from .heap import Heap
from .interpreter import (EXEC_COMPILED, EXEC_INTERP, EXEC_MODES, VM,
                          resolve_exec_mode, run_program)
from .values import ArrayObject, HeapObject, default_value, render_value

__all__ = [
    "VM", "run_program", "Frame", "Heap",
    "EXEC_COMPILED", "EXEC_INTERP", "EXEC_MODES", "resolve_exec_mode",
    "ArrayObject", "HeapObject", "default_value", "render_value",
    "VMError", "VMNullError", "VMBoundsError", "VMArithmeticError",
    "VMLimitError", "VMTypestateError",
]
