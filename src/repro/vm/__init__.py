"""MiniJ virtual machine: heap, frames, natives, interpreter."""

from .errors import (VMArithmeticError, VMBoundsError, VMError, VMLimitError,
                     VMNullError, VMTypestateError)
from .frames import Frame
from .heap import Heap
from .interpreter import VM, run_program
from .values import ArrayObject, HeapObject, default_value, render_value

__all__ = [
    "VM", "run_program", "Frame", "Heap",
    "ArrayObject", "HeapObject", "default_value", "render_value",
    "VMError", "VMNullError", "VMBoundsError", "VMArithmeticError",
    "VMLimitError", "VMTypestateError",
]
