"""Call-stack frames.

A frame holds the register file for one activation.  The profiler
attaches two pieces of state per frame:

* ``shadow`` — the paper's environment ``S`` restricted to this frame's
  registers (register name -> dependence-graph node id),
* ``g`` — the encoded receiver-object context chain for this activation
  (the paper's ``objCon`` value before the mod-``s`` reduction), and
  ``dctx`` — its slot in the bounded domain.
"""

from __future__ import annotations


class Frame:
    __slots__ = ("method", "regs", "pc", "dest", "call_instr",
                 "shadow", "g", "dctx", "last_pred")

    def __init__(self, method, dest=None, call_instr=None):
        self.method = method
        self.regs = {}
        self.pc = 0
        #: Register in the *caller* frame receiving our return value.
        self.dest = dest
        #: The Call instruction that created this frame (None for entry).
        self.call_instr = call_instr
        # Profiler state (set by the tracker when tracking is enabled).
        self.shadow = None
        self.g = 0
        self.dctx = 0
        #: Nearest enclosing predicate node (control-dependence hint),
        #: maintained by trackers running with track_control=True.
        self.last_pred = None

    def __repr__(self):
        return f"<frame {self.method.qualified_name} pc={self.pc}>"
