"""Native methods provided by the VM.

Natives model the boundary where values leave the program: printing is
program output (the paper assigns values reaching output infinite
benefit), and ``Sys.phase`` marks execution phases so tracking can be
restricted to e.g. a server's steady state (§4.1's 5–10x overhead
reduction experiment).

In MiniJ source these are reached through the built-in ``Sys`` class::

    Sys.print(s);     Sys.println(s);   Sys.printInt(i);
    Sys.printBool(b); Sys.phase(name);

The frontend lowers them to ``CallNative`` instructions.
"""

from __future__ import annotations

from .errors import VMError
from .values import render_value

#: MiniJ-visible name -> (native key, param count, returns value?)
SYS_METHODS = {
    "print": ("print", 1, False),
    "println": ("println", 1, False),
    "printInt": ("print_int", 1, False),
    "printBool": ("print_bool", 1, False),
    "phase": ("phase", 1, False),
}


def native_print(vm, args):
    vm.output.append(render_value(args[0]))
    return None


def native_println(vm, args):
    vm.output.append(render_value(args[0]) + "\n")
    return None


def native_print_int(vm, args):
    vm.output.append(render_value(args[0]))
    return None


def native_print_bool(vm, args):
    vm.output.append(render_value(args[0]))
    return None


def native_phase(vm, args):
    name = args[0]
    if not isinstance(name, str):
        raise VMError("Sys.phase expects a string phase name")
    vm.enter_phase(name)
    return None


NATIVES = {
    "print": native_print,
    "println": native_println,
    "print_int": native_print_int,
    "print_bool": native_print_bool,
    "phase": native_phase,
}


def lookup_native(name: str):
    try:
        return NATIVES[name]
    except KeyError:
        raise VMError(f"unknown native {name!r}") from None
