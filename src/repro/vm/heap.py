"""Heap: allocation of objects and arrays, allocation-site bookkeeping.

There is no garbage collector — reproduction workloads are sized so that
Python's own GC handles reclamation once the interpreter drops
references.  The heap tracks per-site allocation counts, which several
analyses and the case-study harness report (the paper reports "number of
objects created" reductions alongside running-time reductions).
"""

from __future__ import annotations

from collections import Counter

from ..ir.types import Type
from .values import ArrayObject, HeapObject, default_value


class Heap:
    """Allocation front end used by the interpreter."""

    def __init__(self):
        self._next_id = 1
        #: allocation-site iid -> number of objects allocated there
        self.site_counts = Counter()
        self.objects_allocated = 0
        self.arrays_allocated = 0

    def new_object(self, cls, site: int) -> HeapObject:
        obj = HeapObject(self._next_id, cls, site)
        self._next_id += 1
        for name, fd in cls.all_fields.items():
            obj.fields[name] = default_value(fd.type)
        self.site_counts[site] += 1
        self.objects_allocated += 1
        return obj

    def new_array(self, elem_type: Type, site: int, length: int
                  ) -> ArrayObject:
        arr = ArrayObject(self._next_id, elem_type, site, length)
        self._next_id += 1
        self.site_counts[site] += 1
        self.arrays_allocated += 1
        return arr

    @property
    def total_allocated(self) -> int:
        return self.objects_allocated + self.arrays_allocated
