"""Runtime value representations.

Primitive values are plain Python objects (``int``, ``bool``, ``str``,
``None`` for null).  Heap references are :class:`HeapObject` /
:class:`ArrayObject` instances.

Shadow state (the paper's shadow heap) lives directly on the heap
objects: ``shadow`` maps a field name (or array index) to the dependence
graph node that last wrote it, and ``tag`` holds the context-annotated
allocation site installed by rule ALLOC (the paper's environment ``P``).
The paper stores both in a 500 MB shadow heap for O(1) access; attaching
them to the object gives the same semantics in Python.
"""

from __future__ import annotations

from ..ir.types import Type


def default_value(type_: Type):
    """Java-style default for a freshly allocated field/element."""
    name = type_.name
    if name == "int":
        return 0
    if name == "bool":
        return False
    # strings and references default to null
    return None


class HeapObject:
    """An instance of a MiniJ class."""

    __slots__ = ("obj_id", "cls", "site", "fields", "shadow", "tag", "state")

    def __init__(self, obj_id: int, cls, site: int):
        self.obj_id = obj_id
        self.cls = cls            # ClassDef
        self.site = site          # allocation-site iid
        self.fields = {}          # field name -> value
        self.shadow = None        # field name -> graph node id (lazy dict)
        self.tag = None           # context-annotated site, set by tracker
        self.state = None         # typestate tag, used by typestate client

    @property
    def class_name(self) -> str:
        return self.cls.name

    def __repr__(self):
        return f"<{self.cls.name}#{self.obj_id}@{self.site}>"


class ArrayObject:
    """A MiniJ array; elements live in ``elems``."""

    __slots__ = ("obj_id", "elem_type", "site", "elems", "shadow", "tag")

    def __init__(self, obj_id: int, elem_type: Type, site: int, length: int):
        self.obj_id = obj_id
        self.elem_type = elem_type
        self.site = site
        self.elems = [default_value(elem_type)] * length
        self.shadow = None        # index -> graph node id (lazy dict)
        self.tag = None

    @property
    def length(self) -> int:
        return len(self.elems)

    def __repr__(self):
        return (f"<{self.elem_type}[{len(self.elems)}]"
                f"#{self.obj_id}@{self.site}>")


def render_value(value) -> str:
    """Human-readable rendering used by Sys.print natives."""
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    try:
        return str(value)
    except ValueError:
        # MiniJ ints are arbitrary precision; CPython's int->str digit
        # guard (sys.int_info.default_max_str_digits) must not abort a
        # legitimate print of a very large value.
        import sys
        limit = sys.get_int_max_str_digits()
        sys.set_int_max_str_digits(0)
        try:
            return str(value)
        finally:
            sys.set_int_max_str_digits(limit)
