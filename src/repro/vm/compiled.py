"""Compiled execution tier: per-method template-compiled dispatch.

The interpreter in :mod:`repro.vm.interpreter` pays a fixed toll per
executed instruction: fetch through ``frame.pc``, an opcode ladder, and
operand-name lookups on the instruction object.  This module removes
that toll by compiling every finalized method into a specialized Python
generator function, once per program:

* **operand accessors precompiled** -- in the untraced template every
  virtual register becomes a Python local; in the traced template the
  register file stays the interpreter's ``frame.regs`` dict so tracer
  hooks observe the exact interpreter frame protocol,
* **constants folded** -- instruction fields (operator, field name,
  literal value, branch targets, resolved call targets, class objects,
  natives) are baked into the generated source or bound once in the
  module namespace,
* **tracker calls fused per opcode** -- the traced template binds each
  opcode's hook to one local (``CostTracker._instr_dispatch`` handlers
  when the tracker exposes them, the public ``trace_*`` protocol
  otherwise) guarded by a single hoisted ``traced`` flag,
* the untraced template contains **zero tracking branches**: no
  ``traced`` flag, no hook calls, nothing to predict.

Control flow is compiled to basic blocks dispatched by a small integer
``_L`` inside one ``while True`` loop; calls suspend the generator with
a ``yield`` carrying ``(target, callee_frame, count, limit)`` and a
trampoline driver (:func:`run_compiled`) maintains the activation
stack, so deep MiniJ recursion never consumes Python stack frames.

The instruction budget, telemetry growth samples, and sampling-window
toggles all share the interpreter's single ``count > limit`` checkpoint
(see :class:`repro.vm.interpreter.RunControl`), so the compiled tier
preserves the interpreter's exact ``instr_count``, phase-window, and
fault-containment semantics: a ``VMError`` leaves ``instr_count``
current and phases closed, and the tracker's graph-so-far remains a
salvageable partial profile.

Burst sampling (``VM(sampling=...)``) selects the template *per
activation*: calls spawned while the tracking window is off run the
untraced template at full speed; calls spawned inside a window (and the
entry activation) run the traced template, whose hoisted flag follows
the window toggles.  The driver maintains the receiver-context chain
across untraced activations so tracked windows keep the paper's
context-annotated node identities.

Methods whose shapes the templates do not cover (no return instruction,
execution falling off the end of the body, unknown operators) mark the
whole program unsupported and the VM transparently falls back to the
interpreter tier.
"""

from __future__ import annotations

from ..ir import instructions as ins
from .errors import (VMArithmeticError, VMBoundsError, VMError, VMNullError)
from .frames import Frame
from .interpreter import (RunControl, _as_str, _is_ref, _java_div, _java_rem,
                          _string_hash)
from .natives import lookup_native

VARIANT_PLAIN = "plain"
VARIANT_TRACED = "traced"

#: rt.hooks index for ``trace_call_complete`` (past the opcode range).
HOOK_CALL_COMPLETE = ins.OP_INTRINSIC + 1

#: Opcodes whose interpreter hook is ``trace_instr`` (fusable through
#: ``CostTracker._instr_dispatch``).
_INSTR_HOOK_OPS = (ins.OP_CONST, ins.OP_MOVE, ins.OP_BINOP, ins.OP_UNOP,
                   ins.OP_INTRINSIC, ins.OP_BRANCH, ins.OP_ARRAY_LEN,
                   ins.OP_LOAD_STATIC, ins.OP_STORE_STATIC)


class UnsupportedShape(Exception):
    """A method the templates cannot compile; triggers interp fallback."""


class _Binder:
    """Assigns stable namespace names to runtime constants."""

    def __init__(self, ns):
        self.ns = ns
        self._names = {}

    def bind(self, obj, prefix: str) -> str:
        name = self._names.get(id(obj))
        if name is None:
            name = f"_{prefix}{len(self._names)}"
            self._names[id(obj)] = name
            self.ns[name] = obj
        return name


def _base_namespace() -> dict:
    return {
        "_F": Frame,
        "_VE": VMError,
        "_NE": VMNullError,
        "_BE": VMBoundsError,
        "_AE": VMArithmeticError,
        "_jd": _java_div,
        "_jr": _java_rem,
        "_sh": _string_hash,
        "_as": _as_str,
        "_ir": _is_ref,
        "_ln": lookup_native,
    }


# ---------------------------------------------------------------------------
# Method template emission
# ---------------------------------------------------------------------------

class _MethodEmitter:
    def __init__(self, method, fname: str, variant: str, binder: _Binder):
        self.method = method
        self.fname = fname
        self.traced = variant == VARIANT_TRACED
        self.binder = binder
        self.lines = []
        self._mangled = {}
        self._used_hooks = set()

    # -- small helpers ---------------------------------------------------

    def reg(self, name: str) -> str:
        """Accessor expression for virtual register ``name``."""
        if self.traced:
            return f"regs[{name!r}]"
        mangled = self._mangled.get(name)
        if mangled is None:
            mangled = self._mangled[name] = f"r{len(self._mangled)}"
        return mangled

    def iname(self, instr) -> str:
        return self.binder.bind(instr, "i")

    def emit(self, depth: int, text: str):
        self.lines.append("    " * depth + text)

    def check(self, d: int, instr):
        """The fused budget / telemetry / sampling checkpoint."""
        self.emit(d, "count += 1")
        tail = "; traced = _tr()" if self.traced else ""
        self.emit(d, f"if count > limit: "
                     f"limit = _fire(count, {self.iname(instr)}, frame){tail}")

    def hook(self, d: int, instr, args: str = ""):
        if not self.traced:
            return
        op = instr.op
        self._used_hooks.add(op)
        self.emit(d, f"if traced: _hk{op}({self.iname(instr)}, frame{args})")

    # -- emission --------------------------------------------------------

    def source(self) -> str:
        body = self.method.body
        if not body:
            raise UnsupportedShape(
                f"{self.method.qualified_name}: empty body")
        if not any(i.op == ins.OP_RETURN for i in body):
            raise UnsupportedShape(
                f"{self.method.qualified_name}: no return instruction")

        leaders = {0}
        for instr in body:
            if instr.op == ins.OP_BRANCH:
                leaders.add(instr.then_index)
                leaders.add(instr.else_index)
            elif instr.op == ins.OP_JUMP:
                leaders.add(instr.target_index)

        # Body first: discovers mangled registers and used hooks, both
        # needed by the prologue.
        self.lines = []
        self._emit_blocks(body, sorted(leaders))
        block_lines = self.lines

        self.lines = []
        self.emit(0, f"def {self.fname}(rt, frame, count, limit):")
        self._emit_prologue(body)
        self.emit(1, "try:")
        self.emit(2, "_L = 0")
        self.emit(2, "while True:")
        self.lines.extend(block_lines)
        self.emit(3, "else:")
        self.emit(4, "raise _VE('compiled dispatch lost', None, frame)")
        self.emit(1, "except _VE:")
        self.emit(2, "vm.instr_count = count")
        self.emit(2, "raise")
        return "\n".join(self.lines) + "\n"

    def _emit_prologue(self, body):
        self.emit(1, "vm = rt.vm")
        self.emit(1, "_fire = rt.fire")
        if self.traced:
            self.emit(1, "regs = frame.regs")
            self.emit(1, "_tr = rt.traced_now")
            self.emit(1, "traced = _tr()")
            self.emit(1, "_hooks = rt.hooks")
            for op in sorted(self._used_hooks):
                self.emit(1, f"_hk{op} = _hooks[{op}]")
        else:
            # Entry registers (receiver + parameters) become locals.
            entry_regs = []
            if not self.method.is_static:
                entry_regs.append("this")
            entry_regs.extend(name for name, _ in self.method.params)
            bound = [name for name in entry_regs if name in self._mangled]
            if bound:
                self.emit(1, "_rg = frame.regs")
                for name in bound:
                    self.emit(1, f"{self.reg(name)} = _rg[{name!r}]")

    def _emit_blocks(self, body, leaders):
        leader_set = set(leaders)
        for pos, leader in enumerate(leaders):
            kw = "if" if pos == 0 else "elif"
            self.emit(3, f"{kw} _L == {leader}:")
            i = leader
            terminated = False
            while i < len(body) and (i == leader or i not in leader_set):
                instr = body[i]
                terminated = self._emit_instr(4, instr)
                if terminated:
                    break
                i += 1
            if not terminated:
                if i >= len(body):
                    raise UnsupportedShape(
                        f"{self.method.qualified_name}: execution can fall "
                        f"off the end of the body")
                self.emit(4, f"_L = {i}")
                self.emit(4, "continue")

    def _emit_instr(self, d: int, instr) -> bool:
        """Emit one instruction; True if it terminates the block."""
        op = instr.op
        R = self.reg
        iname = self.iname(instr)
        self.check(d, instr)

        if op == ins.OP_CONST:
            self.emit(d, f"{R(instr.dest)} = {instr.value!r}")
            self.hook(d, instr)

        elif op == ins.OP_MOVE:
            self.emit(d, f"{R(instr.dest)} = {R(instr.src)}")
            self.hook(d, instr)

        elif op == ins.OP_BINOP:
            self._emit_binop(d, instr, iname)
            self.hook(d, instr)

        elif op == ins.OP_UNOP:
            expr = (f"-{R(instr.src)}" if instr.unop == ins.UN_NEG
                    else f"not {R(instr.src)}")
            self.emit(d, f"{R(instr.dest)} = {expr}")
            self.hook(d, instr)

        elif op == ins.OP_BRANCH:
            self.emit(d, f"_L = {instr.then_index} if {R(instr.cond)} "
                         f"else {instr.else_index}")
            self.hook(d, instr)
            self.emit(d, "continue")
            return True

        elif op == ins.OP_JUMP:
            self.emit(d, f"_L = {instr.target_index}")
            self.emit(d, "continue")
            return True

        elif op == ins.OP_LOAD_FIELD:
            self.emit(d, f"_o = {R(instr.obj)}")
            self.emit(d, f"if _o is None: raise _NE("
                         f"'null dereference reading .{instr.field}', "
                         f"{iname}, frame)")
            self.emit(d, f"{R(instr.dest)} = _o.fields[{instr.field!r}]")
            self.hook(d, instr, ", _o")

        elif op == ins.OP_STORE_FIELD:
            self.emit(d, f"_o = {R(instr.obj)}")
            self.emit(d, f"if _o is None: raise _NE("
                         f"'null dereference writing .{instr.field}', "
                         f"{iname}, frame)")
            self.emit(d, f"_v = {R(instr.src)}")
            self.emit(d, f"_o.fields[{instr.field!r}] = _v")
            self.hook(d, instr, ", _o, _v")

        elif op == ins.OP_ARRAY_LOAD:
            self.emit(d, f"_o = {R(instr.arr)}")
            self.emit(d, f"if _o is None: raise _NE('null array load', "
                         f"{iname}, frame)")
            self.emit(d, f"_x = {R(instr.idx)}")
            self.emit(d, "_e = _o.elems")
            self.emit(d, f"if _x < 0 or _x >= len(_e): raise _BE("
                         f"f'index {{_x}} out of bounds for length "
                         f"{{len(_e)}}', {iname}, frame)")
            self.emit(d, f"{R(instr.dest)} = _e[_x]")
            self.hook(d, instr, ", _o, _x")

        elif op == ins.OP_ARRAY_STORE:
            self.emit(d, f"_o = {R(instr.arr)}")
            self.emit(d, f"if _o is None: raise _NE('null array store', "
                         f"{iname}, frame)")
            self.emit(d, f"_x = {R(instr.idx)}")
            self.emit(d, "_e = _o.elems")
            self.emit(d, f"if _x < 0 or _x >= len(_e): raise _BE("
                         f"f'index {{_x}} out of bounds for length "
                         f"{{len(_e)}}', {iname}, frame)")
            self.emit(d, f"_v = {R(instr.src)}")
            self.emit(d, "_e[_x] = _v")
            self.hook(d, instr, ", _o, _x, _v")

        elif op == ins.OP_ARRAY_LEN:
            self.emit(d, f"_o = {R(instr.arr)}")
            self.emit(d, f"if _o is None: raise _NE('null array length', "
                         f"{iname}, frame)")
            self.emit(d, f"{R(instr.dest)} = len(_o.elems)")
            self.hook(d, instr)

        elif op == ins.OP_NEW_OBJECT:
            cls = self.binder.ns["_program"].classes[instr.class_name]
            cname = self.binder.bind(cls, "c")
            self.emit(d, f"_o = vm.heap.new_object({cname}, {instr.iid})")
            self.emit(d, f"{R(instr.dest)} = _o")
            self.hook(d, instr, ", _o")

        elif op == ins.OP_NEW_ARRAY:
            tname = self.binder.bind(instr.elem_type, "t")
            self.emit(d, f"_n = {R(instr.size)}")
            self.emit(d, f"if _n < 0: raise _BE(f'negative array size "
                         f"{{_n}}', {iname}, frame)")
            self.emit(d, f"_o = vm.heap.new_array({tname}, {instr.iid}, _n)")
            self.emit(d, f"{R(instr.dest)} = _o")
            self.hook(d, instr, ", _o")

        elif op == ins.OP_LOAD_STATIC:
            self.emit(d, f"{R(instr.dest)} = vm._static_slot("
                         f"{instr.class_name!r}, {instr.field!r})")
            self.hook(d, instr)

        elif op == ins.OP_STORE_STATIC:
            self.emit(d, f"vm._set_static_slot({instr.class_name!r}, "
                         f"{instr.field!r}, {R(instr.src)})")
            self.hook(d, instr)

        elif op == ins.OP_INTRINSIC:
            self._emit_intrinsic(d, instr, iname)
            self.hook(d, instr)

        elif op == ins.OP_CALL:
            self._emit_call(d, instr, iname)

        elif op == ins.OP_CALL_NATIVE:
            self._emit_native(d, instr, iname)

        elif op == ins.OP_RETURN:
            self.hook(d, instr)
            value = R(instr.src) if instr.src is not None else "None"
            self.emit(d, f"yield (None, {value}, count, limit)")
            self.emit(d, "return")
            return True

        else:
            raise UnsupportedShape(
                f"{self.method.qualified_name}: unknown opcode {op}")
        return False

    def _emit_binop(self, d: int, instr, iname: str):
        R = self.reg
        dest, a, b = R(instr.dest), R(instr.lhs), R(instr.rhs)
        op = instr.binop
        if op in ("+", "-", "*", "<", "<=", ">", ">="):
            self.emit(d, f"{dest} = {a} {op} {b}")
        elif op == "==":
            self.emit(d, f"_a = {a}")
            self.emit(d, f"_b = {b}")
            self.emit(d, f"{dest} = (_a is _b) if (_ir(_a) or _ir(_b)) "
                         f"else (_a == _b)")
        elif op == "!=":
            self.emit(d, f"_a = {a}")
            self.emit(d, f"_b = {b}")
            self.emit(d, f"{dest} = (_a is not _b) if (_ir(_a) or _ir(_b)) "
                         f"else (_a != _b)")
        elif op == "/":
            self.emit(d, f"_b = {b}")
            self.emit(d, f"if _b == 0: raise _AE('division by zero', "
                         f"{iname}, frame)")
            self.emit(d, f"{dest} = _jd({a}, _b)")
        elif op == "%":
            self.emit(d, f"_b = {b}")
            self.emit(d, f"if _b == 0: raise _AE('modulo by zero', "
                         f"{iname}, frame)")
            self.emit(d, f"{dest} = _jr({a}, _b)")
        elif op == ins.BIN_CONCAT:
            self.emit(d, f"{dest} = _as({a}) + _as({b})")
        elif op == "&":
            self.emit(d, f"_a = {a}")
            self.emit(d, f"_b = {b}")
            self.emit(d, f"{dest} = (_a and _b) if isinstance(_a, bool) "
                         f"else (_a & _b)")
        elif op == "|":
            self.emit(d, f"_a = {a}")
            self.emit(d, f"_b = {b}")
            self.emit(d, f"{dest} = (_a or _b) if isinstance(_a, bool) "
                         f"else (_a | _b)")
        elif op == "^":
            self.emit(d, f"_a = {a}")
            self.emit(d, f"_b = {b}")
            self.emit(d, f"{dest} = (_a != _b) if isinstance(_a, bool) "
                         f"else (_a ^ _b)")
        elif op == "<<":
            self.emit(d, f"{dest} = {a} << ({b} & 31)")
        elif op == ">>":
            self.emit(d, f"{dest} = {a} >> ({b} & 31)")
        else:
            raise UnsupportedShape(
                f"{self.method.qualified_name}: unknown binop {op!r}")

    def _emit_intrinsic(self, d: int, instr, iname: str):
        R = self.reg
        dest = R(instr.dest)
        args = instr.args
        intr = instr.intr
        if intr == ins.INTR_SLEN:
            self.emit(d, f"_s = {R(args[0])}")
            self.emit(d, f"if _s is None: raise _NE('length() on null "
                         f"string', {iname}, frame)")
            self.emit(d, f"{dest} = len(_s)")
        elif intr == ins.INTR_SCHARAT:
            self.emit(d, f"_s = {R(args[0])}")
            self.emit(d, f"if _s is None: raise _NE('charAt() on null "
                         f"string', {iname}, frame)")
            self.emit(d, f"_x = {R(args[1])}")
            self.emit(d, f"if _x < 0 or _x >= len(_s): raise _BE("
                         f"f'charAt index {{_x}} out of bounds for length "
                         f"{{len(_s)}}', {iname}, frame)")
            self.emit(d, f"{dest} = ord(_s[_x])")
        elif intr == ins.INTR_SEQ:
            self.emit(d, f"{dest} = {R(args[0])} == {R(args[1])}")
        elif intr == ins.INTR_SHASH:
            self.emit(d, f"_s = {R(args[0])}")
            self.emit(d, f"if _s is None: raise _NE('hash() on null "
                         f"string', {iname}, frame)")
            self.emit(d, f"{dest} = _sh(_s)")
        elif intr == ins.INTR_ITOS:
            self.emit(d, f"{dest} = str({R(args[0])})")
        elif intr == ins.INTR_CHR:
            self.emit(d, f"{dest} = chr({R(args[0])} & 0x10FFFF)")
        elif intr == ins.INTR_SCMP:
            self.emit(d, f"_a = {R(args[0])}")
            self.emit(d, f"_b = {R(args[1])}")
            self.emit(d, f"if _a is None or _b is None: raise _NE("
                         f"'compare() on null string', {iname}, frame)")
            self.emit(d, f"{dest} = -1 if _a < _b else (1 if _a > _b else 0)")
        else:
            raise UnsupportedShape(
                f"{self.method.qualified_name}: unknown intrinsic {intr!r}")

    def _emit_call(self, d: int, instr, iname: str):
        R = self.reg
        if instr.kind == ins.CALL_VIRTUAL:
            self.emit(d, f"_r = {R(instr.recv)}")
            self.emit(d, f"if _r is None: raise _NE('null receiver calling "
                         f".{instr.method_name}()', {iname}, frame)")
            self.emit(d, f"_m = _r.cls.vtable.get({instr.method_name!r})")
            self.emit(d, f"if _m is None: raise _VE(f'no method "
                         f"{instr.method_name} on {{_r.cls.name}}', "
                         f"{iname}, frame)")
            self.emit(d, f"_cf = _F(_m, {instr.dest!r}, {iname})")
            self.emit(d, "_cr = _cf.regs")
            self.emit(d, "_cr['this'] = _r")
            if instr.args:
                argtuple = ", ".join(R(a) for a in instr.args)
                if len(instr.args) == 1:
                    argtuple += ","
                self.emit(d, f"for _pp, _av in zip(_m.params, ({argtuple})): "
                             f"_cr[_pp[0]] = _av")
            recv_expr = "_r"
            target_expr = "_m"
        else:
            target = instr.resolved
            mname = self.binder.bind(target, "m")
            recv_expr = "None"
            if instr.recv is not None:
                self.emit(d, f"_r = {R(instr.recv)}")
                self.emit(d, f"if _r is None: raise _NE('null receiver "
                             f"calling .{instr.method_name}()', "
                             f"{iname}, frame)")
                recv_expr = "_r"
            self.emit(d, f"_cf = _F({mname}, {instr.dest!r}, {iname})")
            self.emit(d, "_cr = _cf.regs")
            if instr.recv is not None:
                self.emit(d, "_cr['this'] = _r")
            for (pname, _), arg_reg in zip(target.params, instr.args):
                self.emit(d, f"_cr[{pname!r}] = {R(arg_reg)}")
            target_expr = mname
        if self.traced:
            self._used_hooks.add(ins.OP_CALL)
            self.emit(d, f"if traced: _hk{ins.OP_CALL}({iname}, frame, "
                         f"_cf, {recv_expr})")
        self.emit(d, f"_p = yield ({target_expr}, _cf, count, limit)")
        self.emit(d, "count = _p[1]")
        self.emit(d, "limit = _p[2]")
        if self.traced:
            # The driver refreshes the hoisted flag in the resume
            # message -- one expression evaluated trampoline-side
            # instead of a closure call per return.
            self.emit(d, "traced = _p[3]")
        if instr.dest is not None:
            self.emit(d, f"{R(instr.dest)} = _p[0]")
        if self.traced:
            self._used_hooks.add(HOOK_CALL_COMPLETE)
            self.emit(d, f"if traced: _hk{HOOK_CALL_COMPLETE}"
                         f"({iname}, frame)")

    def _emit_native(self, d: int, instr, iname: str):
        R = self.reg
        self.emit(d, "vm.instr_count = count")
        if instr.resolved_native is not None:
            nname = self.binder.bind(instr.resolved_native, "n")
            callee = nname
        else:
            callee = f"_ln({instr.native!r})"
        arglist = ", ".join(R(a) for a in instr.args)
        self.emit(d, f"_v = {callee}(vm, [{arglist}])")
        if instr.dest is not None:
            self.emit(d, f"{R(instr.dest)} = _v")
        # A native may move a sampling boundary (Sys.phase resets the
        # window cursor) and may toggle phase-restricted tracking.
        self.emit(d, "limit = rt.limit")
        if self.traced:
            self.emit(d, "traced = _tr()")
        self.hook(d, instr)


# ---------------------------------------------------------------------------
# Program compilation + caching
# ---------------------------------------------------------------------------

def compiled_tier(program, variant: str):
    """The ``{MethodDef: generator function}`` tier for ``variant``.

    Compiled lazily on first use and cached on the program; returns
    None when the program contains a shape the templates do not
    support (the VM then falls back to the interpreter).
    """
    cache = getattr(program, "_compiled_tiers", None)
    if cache is None:
        cache = program._compiled_tiers = {}
    if variant in cache:
        tier = cache[variant]
        return tier or None
    try:
        tier = _compile_program(program, variant)
    except UnsupportedShape:
        cache[variant] = False
        return None
    cache[variant] = tier
    return tier


def precompile(program, tracer: bool = False, sampling: bool = False):
    """Eagerly build the tiers a run configuration will need.

    Benchmarks call this so compilation cost lands outside the timed
    region; normal runs compile lazily on first execution.
    """
    variants = []
    if not tracer or sampling:
        variants.append(VARIANT_PLAIN)
    if tracer:
        variants.append(VARIANT_TRACED)
    return all(compiled_tier(program, v) is not None for v in variants)


def _compile_program(program, variant: str):
    ns = _base_namespace()
    ns["_program"] = program
    binder = _Binder(ns)
    fnames = {}
    sources = []
    for cls in sorted(program.classes.values(), key=lambda c: c.name):
        for method in sorted(cls.methods.values(), key=lambda m: m.name):
            fname = f"_fn{len(fnames)}"
            fnames[method] = fname
            emitter = _MethodEmitter(method, fname, variant, binder)
            sources.append(emitter.source())
    source = "\n".join(sources)
    code = compile(source, f"<repro-compiled:{variant}>", "exec")
    exec(code, ns)
    return {method: ns[fname] for method, fname in fnames.items()}


# ---------------------------------------------------------------------------
# Tracker hook fusion
# ---------------------------------------------------------------------------

def build_hooks(tracer):
    """Resolve the tracer's per-opcode hooks once per run.

    ``CostTracker`` exposes ``_instr_dispatch`` (opcode -> bound
    handler); fusing through it skips the ``trace_instr`` indirection.
    The fusion is only safe when ``trace_instr`` itself has not been
    overridden, so any tracer with custom ``trace_instr`` behaviour
    gets the public protocol unchanged.
    """
    hooks = [None] * (HOOK_CALL_COMPLETE + 1)
    dispatch = getattr(tracer, "_instr_dispatch", None)
    if dispatch is not None:
        try:
            from ..profiler.tracker import CostTracker
        except ImportError:  # pragma: no cover - profiler always present
            dispatch = None
        else:
            if not (isinstance(tracer, CostTracker) and
                    type(tracer).trace_instr is CostTracker.trace_instr):
                dispatch = None
    for op in _INSTR_HOOK_OPS:
        hooks[op] = dispatch[op] if dispatch is not None else tracer.trace_instr
    hooks[ins.OP_LOAD_FIELD] = tracer.trace_load_field
    hooks[ins.OP_STORE_FIELD] = tracer.trace_store_field
    hooks[ins.OP_ARRAY_LOAD] = tracer.trace_array_load
    hooks[ins.OP_ARRAY_STORE] = tracer.trace_array_store
    hooks[ins.OP_NEW_OBJECT] = tracer.trace_new_object
    hooks[ins.OP_NEW_ARRAY] = tracer.trace_new_array
    hooks[ins.OP_CALL] = tracer.trace_call
    hooks[ins.OP_RETURN] = tracer.trace_return
    hooks[ins.OP_CALL_NATIVE] = tracer.trace_native
    hooks[HOOK_CALL_COMPLETE] = tracer.trace_call_complete
    return hooks


# ---------------------------------------------------------------------------
# Trampoline driver
# ---------------------------------------------------------------------------

def run_compiled(vm) -> bool:
    """Execute ``vm``'s program on the compiled tier.

    Returns False (without executing anything) when the program has an
    unsupported shape, so :meth:`VM.run` can fall back to the
    interpreter loop.
    """
    program = vm.program
    tracer = vm.tracer
    need_traced = tracer is not None
    need_plain = tracer is None or (vm.sampling is not None)
    traced_fns = plain_fns = None
    if need_traced:
        traced_fns = compiled_tier(program, VARIANT_TRACED)
        if traced_fns is None:
            return False
    if need_plain:
        plain_fns = compiled_tier(program, VARIANT_PLAIN)
        if plain_fns is None:
            return False

    entry = program.entry
    frame = Frame(entry)
    frames = [frame]
    rt = RunControl(vm, frames)
    cursor = rt.cursor
    rt.tracer = tracer
    if tracer is not None:
        rt.hooks = build_hooks(tracer)
        if cursor is None:
            rt.traced_now = lambda: tracer.enabled
        else:
            rt.traced_now = lambda: tracer.enabled and cursor.on
        if tracer.enabled:
            tracer.on_entry_frame(frame)

    count = vm.instr_count
    limit = rt.initial(count)
    sampling_calls = tracer is not None and cursor is not None
    if sampling_calls:
        from ..profiler.context import extend_context
        ctx_slots = getattr(tracer, "slots", 0)
    # The entry activation always runs the traced template when a
    # tracer is attached: the tracking windows toggle its hoisted flag,
    # and long-lived frames (main) would otherwise never be tracked.
    fns = traced_fns if tracer is not None else plain_fns
    gens = [(fns[entry](rt, frame, count, limit), tracer is not None)]
    msg = None
    telemetry = vm.telemetry
    try:
        try:
            while gens:
                gen, gen_traced = gens[-1]
                item = gen.send(msg)
                target = item[0]
                if target is not None:
                    cframe = item[1]
                    if sampling_calls:
                        if cursor.on:
                            # Inside a window, calls made by still-
                            # plain activations must extend the
                            # receiver-context chain here (their
                            # templates carry no hooks).
                            if not (gen_traced and tracer.enabled):
                                recv = cframe.regs.get("this")
                                caller = frames[-1]
                                g = (extend_context(caller.g, recv.site)
                                     if recv is not None else caller.g)
                                cframe.g = g
                                cframe.dctx = ((g % ctx_slots)
                                               if ctx_slots else 0)
                            callee_traced = True
                            callee_fns = traced_fns
                        else:
                            # Untracked burst: no bookkeeping at all.
                            # RunControl rebuilds the chain from the
                            # live stack when the next window opens.
                            callee_traced = False
                            callee_fns = plain_fns
                    else:
                        callee_traced = tracer is not None
                        callee_fns = fns
                    frames.append(cframe)
                    gens.append((callee_fns[target](rt, cframe,
                                                    item[2], item[3]),
                                 callee_traced))
                    msg = None
                else:
                    count = item[2]
                    limit = item[3]
                    gens.pop()
                    frames.pop()
                    if gens:
                        # Traced resumers take their refreshed hoisted
                        # flag from the message (see _emit_call).
                        if gens[-1][1]:
                            msg = (item[1], count, limit,
                                   tracer.enabled
                                   and (cursor is None or cursor.on))
                        else:
                            msg = (item[1], count, limit)
                    else:
                        vm.result = item[1]
        finally:
            for gen, _ in gens:
                gen.close()
    except VMError:
        # Same containment contract as the interpreter loop: the
        # faulting template already stored its exact instruction count.
        rt.finish(vm.instr_count)
        vm._close_phases()
        raise
    vm.instr_count = count
    rt.finish(count)
    vm._close_phases()
    if telemetry.enabled:
        telemetry.vm_finish(vm)
    vm.finished = True
    vm.exec_tier = "compiled"
    return True
