"""Runtime errors raised by the MiniJ VM.

Each error carries the faulting instruction and the active frame so that
diagnostic clients (e.g. the null-propagation analysis of Figure 2a) can
start their backward traversal from the exact failure point.
"""

from __future__ import annotations


class VMError(Exception):
    """Base class for runtime failures of the interpreted program."""

    def __init__(self, message: str, instr=None, frame=None):
        super().__init__(message)
        self.instr = instr
        self.frame = frame

    @property
    def where(self) -> str:
        if self.frame is None or self.instr is None:
            return "?"
        return (f"{self.frame.method.qualified_name} "
                f"(line {self.instr.line}, iid {self.instr.iid})")


class VMNullError(VMError):
    """Null dereference (Java NullPointerException analogue)."""


class VMBoundsError(VMError):
    """Array or string index out of bounds."""


class VMArithmeticError(VMError):
    """Division or modulo by zero."""


class VMLimitError(VMError):
    """Execution exceeded the configured instruction budget."""


class VMTypestateError(VMError):
    """Raised by the typestate client when a protocol is violated."""

    def __init__(self, message: str, instr=None, frame=None, history=None):
        super().__init__(message, instr, frame)
        #: Recorded event history (list of (method, state_before)) from
        #: the typestate tracker, when available.
        self.history = history or []
